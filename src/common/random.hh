/**
 * @file
 * Deterministic pseudo-random generator for tests and workload synthesis.
 *
 * A fixed xorshift implementation (rather than std::mt19937) guarantees
 * identical streams across platforms and standard-library versions, which
 * keeps benchmark inputs and golden test values stable.
 */

#ifndef OPAC_COMMON_RANDOM_HH
#define OPAC_COMMON_RANDOM_HH

#include <cstdint>

namespace opac
{

/** xorshift64* generator with utility draws for floats and ranges. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
        : state(seed ? seed : 1)
    {}

    /** Next raw 64-bit draw. */
    std::uint64_t
    next()
    {
        std::uint64_t x = state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        state = x;
        return x * 0x2545f4914f6cdd1dull;
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t
    range(std::int64_t lo, std::int64_t hi)
    {
        return lo + std::int64_t(next() % std::uint64_t(hi - lo + 1));
    }

    /** Uniform float in [0, 1). */
    float
    uniform()
    {
        return float(next() >> 40) / float(1 << 24);
    }

    /** Uniform float in [lo, hi). */
    float
    uniform(float lo, float hi)
    {
        return lo + (hi - lo) * uniform();
    }

    /**
     * A well-conditioned matrix/signal element: uniform in [-1, 1],
     * avoiding the huge dynamic ranges that make reference comparisons
     * ill-conditioned.
     */
    float
    element()
    {
        return uniform(-1.0f, 1.0f);
    }

  private:
    std::uint64_t state;
};

} // namespace opac

#endif // OPAC_COMMON_RANDOM_HH
