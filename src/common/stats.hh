/**
 * @file
 * Lightweight statistics package.
 *
 * Components register named scalar counters and distributions in a
 * StatGroup; groups nest to form a tree that can be dumped as text. This is
 * a deliberately small re-implementation of the usual architecture-
 * simulator stats idiom: declaration-site registration, cheap updates,
 * formatted dump at the end of simulation.
 */

#ifndef OPAC_COMMON_STATS_HH
#define OPAC_COMMON_STATS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace opac::stats
{

/** A monotonically increasing event counter. */
class Counter
{
  public:
    Counter() = default;

    Counter &operator++() { ++_value; return *this; }
    Counter &operator+=(std::uint64_t n) { _value += n; return *this; }

    std::uint64_t value() const { return _value; }
    void reset() { _value = 0; }

  private:
    std::uint64_t _value = 0;
};

/** Running min/max/mean over sampled values (e.g. FIFO occupancy). */
class Distribution
{
  public:
    void sample(double v);

    std::uint64_t count() const { return _count; }
    double min() const { return _count ? _min : 0.0; }
    double max() const { return _count ? _max : 0.0; }
    double mean() const { return _count ? _sum / double(_count) : 0.0; }
    void reset();

  private:
    std::uint64_t _count = 0;
    double _sum = 0.0;
    double _min = 0.0;
    double _max = 0.0;
};

/**
 * A named collection of counters and distributions. Groups may nest; the
 * dump walks the tree depth-first and prints fully qualified stat names.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name, StatGroup *parent = nullptr);
    ~StatGroup();

    StatGroup(const StatGroup &) = delete;
    StatGroup &operator=(const StatGroup &) = delete;

    /** Register a counter under this group. The counter must outlive it. */
    void addCounter(const std::string &name, Counter *c,
                    const std::string &desc = "");
    /** Register a distribution under this group. */
    void addDistribution(const std::string &name, Distribution *d,
                         const std::string &desc = "");

    const std::string &name() const { return _name; }

    /** Append "fullname value # desc" lines for this subtree. */
    void dump(std::string &out, const std::string &prefix = "") const;

    /** Reset every registered stat in this subtree. */
    void resetAll();

    /** Look up a counter value by path relative to this group. */
    std::uint64_t counterValue(const std::string &path) const;

  private:
    struct CounterEntry { Counter *counter; std::string desc; };
    struct DistEntry { Distribution *dist; std::string desc; };

    std::string _name;
    StatGroup *parent;
    std::vector<StatGroup *> children;
    std::map<std::string, CounterEntry> counters;
    std::map<std::string, DistEntry> dists;
};

} // namespace opac::stats

#endif // OPAC_COMMON_STATS_HH
