#include "common/logging.hh"

#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <stdexcept>
#include <vector>

namespace opac
{

namespace
{

/** Serializes stderr emission so concurrent sweeps do not interleave. */
std::mutex &
logLock()
{
    static std::mutex m;
    return m;
}

} // anonymous namespace

std::string
strfmt(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    va_list ap2;
    va_copy(ap2, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap);
    va_end(ap);
    if (n < 0) {
        va_end(ap2);
        return fmt;
    }
    std::vector<char> buf(static_cast<size_t>(n) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap2);
    va_end(ap2);
    return std::string(buf.data(), static_cast<size_t>(n));
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    // Throwing (rather than abort()) lets the test suite exercise panic
    // paths; the top level of every binary treats it as fatal.
    throw std::logic_error(strfmt("panic: %s:%d: %s", file, line,
                                  msg.c_str()));
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    throw std::runtime_error(strfmt("fatal: %s:%d: %s", file, line,
                                    msg.c_str()));
}

void
warn(const std::string &msg)
{
    std::lock_guard<std::mutex> g(logLock());
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
warnOnceImpl(std::atomic<bool> &printed, const std::string &msg)
{
    if (printed.exchange(true, std::memory_order_relaxed))
        return;
    std::lock_guard<std::mutex> g(logLock());
    std::fprintf(stderr, "warn: %s (repeats from this callsite "
                         "suppressed)\n", msg.c_str());
}

void
inform(const std::string &msg)
{
    std::lock_guard<std::mutex> g(logLock());
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

} // namespace opac
