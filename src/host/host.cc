#include "host/host.hh"

#include <algorithm>
#include <bit>
#include <cmath>
#include <iterator>

#include <map>

#include "common/error.hh"
#include "common/logging.hh"
#include "sim/replay.hh"
#include "snap/snapshot.hh"

namespace opac::host
{

HostOp
sendOp(std::uint32_t cell_mask, Region region, SendTarget target)
{
    HostOp op;
    op.kind = HostOp::Kind::Send;
    op.cellMask = cell_mask;
    op.region = region;
    op.target = target;
    return op;
}

HostOp
recvOp(unsigned cell, Region region)
{
    HostOp op;
    op.kind = HostOp::Kind::Recv;
    op.cellMask = 1u << cell;
    op.region = region;
    return op;
}

HostOp
callOp(std::uint32_t cell_mask, Word entry,
       const std::vector<std::int32_t> &params)
{
    HostOp op;
    op.kind = HostOp::Kind::Call;
    op.cellMask = cell_mask;
    op.callWords.push_back(entry);
    for (auto p : params)
        op.callWords.push_back(Word(p));
    return op;
}

HostOp
recipOp(std::size_t dst, std::size_t src)
{
    HostOp op;
    op.kind = HostOp::Kind::Compute;
    op.scalarOp = HostScalarOp::Recip;
    op.scalarDst = dst;
    op.scalarSrc = src;
    return op;
}

HostOp
sqrtRecipOp(std::size_t dst_sqrt, std::size_t dst_recip,
            std::size_t src)
{
    HostOp op;
    op.kind = HostOp::Kind::Compute;
    op.scalarOp = HostScalarOp::SqrtRecip;
    op.scalarDst = dst_sqrt;
    op.scalarDst2 = dst_recip;
    op.scalarSrc = src;
    return op;
}

HostOp
txnBeginOp(std::uint32_t job_id, std::uint32_t cell_mask,
           Cycle timeout_cycles)
{
    HostOp op;
    op.kind = HostOp::Kind::TxnBegin;
    op.jobId = job_id;
    op.cellMask = cell_mask;
    op.timeoutCycles = timeout_cycles;
    return op;
}

HostOp
txnEndOp(std::uint32_t job_id)
{
    HostOp op;
    op.kind = HostOp::Kind::TxnEnd;
    op.jobId = job_id;
    return op;
}

HostOp
resetOp(std::uint32_t cell_mask)
{
    HostOp op;
    op.kind = HostOp::Kind::Reset;
    op.cellMask = cell_mask;
    return op;
}

std::vector<HostOp>
pmuReadProgram(unsigned cell, cell::PmuReg reg, std::size_t dst)
{
    return {
        callOp(1u << cell, cell::pmuCallEntry,
               {std::int32_t(std::uint32_t(reg))}),
        recvOp(cell, Region::vec(dst, 2)),
    };
}

Host::Host(std::string name, const HostConfig &cfg, HostMemory &mem,
           std::vector<cell::Cell *> cells,
           stats::StatGroup *parent_stats)
    : sim::Component(std::move(name)), cfg(cfg), mem(mem),
      cells(std::move(cells)), statGroup(Component::name(), parent_stats)
{
    opac_assert(!this->cells.empty(), "host with no cells");
    opac_assert(this->cells.size() <= 32, "cell mask limited to 32 cells");
    busDrops.assign(this->cells.size(), 0);
    busDups.assign(this->cells.size(), 0);
    statGroup.addCounter("wordsSent", &statWordsSent,
                         "data words host -> cells");
    statGroup.addCounter("wordsReceived", &statWordsRecv,
                         "data words cells -> host");
    statGroup.addCounter("callWords", &statCallWords,
                         "call/parameter words sent");
    statGroup.addCounter("busyCycles", &statBusy,
                         "cycles with program remaining");
    statGroup.addCounter("stallFifoFull", &statStallFull,
                         "cycles blocked on a full interface queue");
    statGroup.addCounter("stallFifoEmpty", &statStallEmpty,
                         "cycles blocked on an empty tpo");
    statGroup.addCounter("opsCompleted", &statOpsDone,
                         "transfer descriptors completed");
    statGroup.addCounter("txnTimeouts", &statTimeouts,
                         "transaction deadline misses");
    statGroup.addCounter("txnRetries", &statRetries,
                         "transaction replays after an abort");
    statGroup.addCounter("cellResets", &statResets,
                         "reset pulses sent to cells");
    statGroup.addCounter("deadCells", &statDeadCells,
                         "cells retired after exhausting retries");
    statGroup.addCounter("txnsCommitted", &statTxnsDone,
                         "transactions committed");
    statGroup.addCounter("busDrops", &statBusDrops,
                         "bus words dropped by injected faults");
    statGroup.addCounter("busDups", &statBusDups,
                         "bus words duplicated by injected faults");
    statGroup.addCounter("memSpikes", &statMemSpikes,
                         "memory latency spikes applied");
    statGroup.addCounter("parityTrips", &statParityTrips,
                         "uncorrectable tpo words seen by the host");
    if (this->cfg.recovery.enabled) {
        // The host is the consumer of every tpo: an uncorrectable word
        // there means a result may be corrupt, which only a
        // transaction abort can undo.
        for (cell::Cell *c : this->cells) {
            c->tpo().setProtectionHandler([this](Cycle) {
                parityTripped = true;
                ++statParityTrips;
            });
        }
    }
}

void
Host::attachTracer(trace::Tracer *t)
{
    tracer = t;
    traceComp = t ? t->internComponent(name()) : 0;
    // Pre-intern one track per descriptor kind so opTrack() is a pure
    // lookup: track ids never depend on which descriptors a program
    // happens to run (identical across engine modes) and nothing
    // appends to the track table mid-run.
    static const char *names[] = {"send",      "recv",      "call",
                                  "compute",   "txn_begin", "txn_end",
                                  "reset"};
    for (std::size_t i = 0; i < std::size(names); ++i)
        kindTracks[i] = t ? t->internTrack(traceComp, names[i]) : 0;
}

std::uint16_t
Host::opTrack(const HostOp &op)
{
    return kindTracks[std::size_t(op.kind)];
}

void
Host::traceWord(Cycle now, unsigned cost)
{
    tracer->emit(now, trace::EventKind::BusWord, 0, traceComp, 0,
                 std::uint32_t(pos), cost);
}

void
Host::enqueue(HostOp op)
{
    // A host that ran out of program sleeps with no wake-up hint; new
    // work must wake it (the replan path enqueues mid-run).
    wakeForMutation();
    if (op.kind == HostOp::Kind::Compute)
        opac_assert(op.scalarDst < mem.size() && op.scalarSrc < mem.size(),
                    "compute op out of memory range");
    program.push_back(std::move(op));
}

void
Host::enqueue(const std::vector<HostOp> &ops)
{
    for (const auto &op : ops)
        enqueue(op);
}

Word
Host::memLoad(std::size_t addr) const
{
    if (inTxn) {
        auto it = staging.find(addr);
        if (it != staging.end())
            return it->second;
    }
    return mem.load(addr);
}

void
Host::memStore(std::size_t addr, Word w)
{
    opac_assert(addr < mem.size(), "store out of range: %zu", addr);
    if (inTxn)
        staging[addr] = w;
    else
        mem.store(addr, w);
}

unsigned
Host::takeMemSpike()
{
    unsigned s = memSpike;
    memSpike = 0;
    return s;
}

void
Host::armBusFault(unsigned cell, fault::FaultKind kind)
{
    // External mutation (the injector's tick): wake a sleeping host
    // before its state changes.
    wakeForMutation();
    opac_assert(cell < cells.size(), "bus fault on cell %u of %zu", cell,
                cells.size());
    if (kind == fault::FaultKind::BusDrop)
        ++busDrops[cell];
    else
        ++busDups[cell];
}

void
Host::armMemLatency(unsigned cycles)
{
    wakeForMutation();
    memSpike += cycles;
    ++statMemSpikes;
}

void
Host::pushFaulty(TimedFifo &q, unsigned c, Word w, Cycle now)
{
    bool protection = q.parity() != fault::ParityMode::Off;
    if (busDrops[c] > 0) {
        --busDrops[c];
        ++statBusDrops;
        // The word goes missing on the link. The modeled sequence tags
        // notice the gap at the receiver when protection is on;
        // without it the loss is silent and only a timeout (or a
        // desynchronized kernel) gives it away.
        if (protection)
            cells[c]->enterFaulted("bus drop", now);
        return;
    }
    q.push(w, now);
    if (busDups[c] > 0) {
        --busDups[c];
        ++statBusDups;
        if (q.canPush())
            q.push(w, now);
        if (protection)
            cells[c]->enterFaulted("bus duplicate", now);
    }
}

bool
Host::tickSend(const HostOp &op, Cycle now)
{
    if (pos >= op.region.count())
        return true;
    // All addressed cells must have room (a broadcast is one bus write).
    for (std::size_t c = 0; c < cells.size(); ++c) {
        if (!(op.cellMask & (1u << c)))
            continue;
        TimedFifo &q = op.target == SendTarget::TpX ? cells[c]->tpx()
                                                    : cells[c]->tpy();
        if (!q.canPush()) {
            ++statStallFull;
            if (tracer) {
                tracer->emit(now, trace::EventKind::Stall,
                             std::uint8_t(trace::StallWhy::BusFull),
                             traceComp, 0, std::uint32_t(pos), 0);
            }
            return false;
        }
    }
    Word w = memLoad(op.region.addr(pos));
    for (std::size_t c = 0; c < cells.size(); ++c) {
        if (!(op.cellMask & (1u << c)))
            continue;
        TimedFifo &q = op.target == SendTarget::TpX ? cells[c]->tpx()
                                                    : cells[c]->tpy();
        pushFaulty(q, unsigned(c), w, now);
    }
    ++statWordsSent;
    ++pos;
    if (tracer)
        traceWord(now, cfg.tau);
    cooldown = (cfg.tau > 0 ? cfg.tau - 1 : 0) + takeMemSpike();
    return pos >= op.region.count();
}

bool
Host::tickRecv(const HostOp &op, Cycle now)
{
    if (pos >= op.region.count())
        return true;
    unsigned cell_idx = 0;
    while (!(op.cellMask & (1u << cell_idx)))
        ++cell_idx;
    TimedFifo &q = cells[cell_idx]->tpo();
    if (!q.canPop(now)) {
        ++statStallEmpty;
        if (tracer) {
            tracer->emit(now, trace::EventKind::Stall,
                         std::uint8_t(trace::StallWhy::BusEmpty),
                         traceComp, 0, std::uint32_t(pos), 0);
        }
        return false;
    }
    memStore(op.region.addr(pos), q.pop(now));
    ++statWordsRecv;
    ++pos;
    if (tracer)
        traceWord(now, cfg.tau);
    cooldown = (cfg.tau > 0 ? cfg.tau - 1 : 0) + takeMemSpike();
    return pos >= op.region.count();
}

bool
Host::tickCall(const HostOp &op, Cycle now)
{
    if (pos >= op.callWords.size())
        return true;
    for (std::size_t c = 0; c < cells.size(); ++c) {
        if (!(op.cellMask & (1u << c)))
            continue;
        if (!cells[c]->tpi().canPush()) {
            ++statStallFull;
            if (tracer) {
                tracer->emit(now, trace::EventKind::Stall,
                             std::uint8_t(trace::StallWhy::BusFull),
                             traceComp, 0, std::uint32_t(pos), 0);
            }
            return false;
        }
    }
    for (std::size_t c = 0; c < cells.size(); ++c) {
        if (!(op.cellMask & (1u << c)))
            continue;
        pushFaulty(cells[c]->tpi(), unsigned(c), op.callWords[pos], now);
    }
    ++statCallWords;
    ++pos;
    if (tracer)
        traceWord(now, cfg.callWordCost);
    cooldown = cfg.callWordCost > 0 ? cfg.callWordCost - 1 : 0;
    return pos >= op.callWords.size();
}

void
Host::applyScalar(const HostOp &op)
{
    switch (op.scalarOp) {
      case HostScalarOp::Recip: {
        float v = wordToFloat(memLoad(op.scalarSrc));
        memStore(op.scalarDst, floatToWord(1.0f / v));
        break;
      }
      case HostScalarOp::SqrtRecip: {
        float v = wordToFloat(memLoad(op.scalarSrc));
        float s = std::sqrt(v);
        memStore(op.scalarDst, floatToWord(s));
        memStore(op.scalarDst2, floatToWord(1.0f / s));
        break;
      }
    }
}

bool
Host::tickCompute(const HostOp &op, Cycle now)
{
    (void)now;
    if (computeLeft == 0)
        computeLeft = cfg.recipCycles;
    if (--computeLeft == 0) {
        applyScalar(op);
        return true;
    }
    return false;
}

bool
Host::tickTxnBegin(const HostOp &op, Cycle now)
{
    if (!cfg.recovery.enabled)
        return true;
    inTxn = true;
    txnJob = op.jobId;
    txnMask = op.cellMask;
    txnTimeout = op.timeoutCycles != 0 ? op.timeoutCycles
                                       : cfg.recovery.timeoutCycles;
    txnDeadline = now + txnTimeout;
    txnRetries = 0;
    parityTripped = false;
    journal.clear();
    staging.clear();
    return true;
}

bool
Host::tickTxnEnd(const HostOp &op, Cycle now)
{
    (void)now;
    if (!inTxn)
        return true;
    // Commit: the staged stores become visible all at once. Addresses
    // are distinct map keys, so flush order cannot matter.
    for (const auto &[addr, w] : staging)
        mem.store(addr, w);
    staging.clear();
    journal.clear();
    inTxn = false;
    txnDeadline = cycleNever;
    _completedJobs.push_back(op.jobId);
    ++statTxnsDone;
    return true;
}

bool
Host::tickReset(const HostOp &op, Cycle now)
{
    while (pos < cells.size() && !(op.cellMask & (1u << pos)))
        ++pos;
    if (pos >= cells.size())
        return true;
    // The reserved resetCallEntry word is decoded at the tpi write
    // port, so a reset needs no queue space — it works on a wedged
    // cell whose tpi is full.
    cells[pos]->hardReset(now);
    ++statResets;
    ++statCallWords;
    if (tracer)
        traceWord(now, cfg.callWordCost);
    cooldown = cfg.callWordCost > 0 ? cfg.callWordCost - 1 : 0;
    ++pos;
    while (pos < cells.size() && !(op.cellMask & (1u << pos)))
        ++pos;
    return pos >= cells.size();
}

unsigned
Host::blameCell() const
{
    // A cell that has visibly faulted inside the transaction's set is
    // the obvious culprit.
    for (std::size_t c = 0; c < cells.size(); ++c) {
        if ((txnMask & (1u << c)) && !cells[c]->dead()
            && cells[c]->faulted())
            return unsigned(c);
    }
    // Otherwise blame the cell the stalled front descriptor is waiting
    // on (for a Recv that is exactly the producer that went quiet).
    if (!program.empty()) {
        const HostOp &op = program.front();
        for (std::size_t c = 0; c < cells.size(); ++c) {
            if ((op.cellMask & (1u << c)) && !cells[c]->dead())
                return unsigned(c);
        }
    }
    for (std::size_t c = 0; c < cells.size(); ++c) {
        if ((txnMask & (1u << c)) && !cells[c]->dead())
            return unsigned(c);
    }
    for (std::size_t c = 0; c < cells.size(); ++c) {
        if (!cells[c]->dead())
            return unsigned(c);
    }
    return 0;
}

void
Host::recoverTxn(Cycle now, sim::Engine &engine)
{
    parityTripped = false;
    staging.clear();
    if (txnRetries >= cfg.recovery.retryBudget) {
        // Degrade: retire the culprit and hand the remaining work to
        // the planner to rebuild on the survivors.
        unsigned victim = blameCell();
        cells[victim]->markDead(now);
        _deadMask |= 1u << victim;
        ++statDeadCells;
        // The survivors' queues still hold words from the aborted
        // attempt: reset them before the re-planned program arrives.
        for (std::size_t c = 0; c < cells.size(); ++c) {
            if (!(txnMask & (1u << c)) || cells[c]->dead())
                continue;
            cells[c]->hardReset(now);
            ++statResets;
            cooldown += unsigned(cfg.recovery.resetCostCycles);
        }
        journal.clear();
        program.clear();
        pos = 0;
        computeLeft = 0;
        opAnnounced = false;
        inTxn = false;
        txnDeadline = cycleNever;
        txnRetries = 0;
        if (aliveMask() == 0)
            throw RecoveryError(name(), now, "all cells dead");
        if (!replanFn)
            throw RecoveryError(
                name(), now,
                strfmt("cell %u retired and no replan handler installed",
                       victim));
        replanFn(aliveMask());
        engine.noteProgress();
        return;
    }
    ++txnRetries;
    ++statRetries;
    // Reset every (surviving) cell the transaction touches: their
    // queues may hold words from the aborted attempt.
    unsigned nreset = 0;
    for (std::size_t c = 0; c < cells.size(); ++c) {
        if (!(txnMask & (1u << c)) || cells[c]->dead())
            continue;
        cells[c]->hardReset(now);
        ++statResets;
        ++nreset;
    }
    cooldown += unsigned(cfg.recovery.resetCostCycles) * nreset;
    // Replay: the journaled (completed) descriptors go back in front
    // of the still-pending ones, and the partially-done front
    // descriptor restarts from its first word.
    for (auto it = journal.rbegin(); it != journal.rend(); ++it)
        program.push_front(*it);
    journal.clear();
    pos = 0;
    computeLeft = 0;
    opAnnounced = false;
    txnDeadline = now + txnTimeout + cooldown;
    engine.noteProgress();
}

bool
Host::forceRecovery(sim::Engine &engine)
{
    wakeForMutation();
    if (!cfg.recovery.enabled || !inTxn)
        return false;
    ++statTimeouts;
    recoverTxn(engine.now(), engine);
    return true;
}

void
Host::tick(sim::Engine &engine)
{
    if (program.empty())
        return;
    ++statBusy;
    Cycle now = engine.now();
    if (inTxn && (parityTripped || now >= txnDeadline)) {
        if (!parityTripped)
            ++statTimeouts;
        recoverTxn(now, engine);
        return;
    }
    if (cooldown > 0) {
        // A pure countdown is not forward progress: it is fully
        // predictable (see nextEventAt), so the engine may skip it.
        --cooldown;
        return;
    }
    const HostOp &op = program.front();
    if (tracer && !opAnnounced) {
        opAnnounced = true;
        std::uint32_t total = 0;
        switch (op.kind) {
          case HostOp::Kind::Send:
          case HostOp::Kind::Recv:
            total = std::uint32_t(op.region.count());
            break;
          case HostOp::Kind::Call:
            total = std::uint32_t(op.callWords.size());
            break;
          case HostOp::Kind::Compute:
          case HostOp::Kind::TxnBegin:
          case HostOp::Kind::TxnEnd:
            total = 1;
            break;
          case HostOp::Kind::Reset:
            total = std::uint32_t(std::popcount(op.cellMask));
            break;
        }
        tracer->emit(engine.now(), trace::EventKind::BusBegin, 0,
                     traceComp, opTrack(op), total, 0);
    }
    bool finished = false;
    std::size_t prev_pos = pos;
    switch (op.kind) {
      case HostOp::Kind::Send:
        finished = tickSend(op, now);
        break;
      case HostOp::Kind::Recv:
        finished = tickRecv(op, now);
        break;
      case HostOp::Kind::Call:
        finished = tickCall(op, now);
        break;
      case HostOp::Kind::Compute:
        finished = tickCompute(op, now);
        break;
      case HostOp::Kind::TxnBegin:
        finished = tickTxnBegin(op, now);
        break;
      case HostOp::Kind::TxnEnd:
        finished = tickTxnEnd(op, now);
        break;
      case HostOp::Kind::Reset:
        finished = tickReset(op, now);
        break;
    }
    // A Compute countdown cycle is not progress (it is predictable and
    // skippable, like the cooldown above); moving a word or finishing
    // a descriptor is.
    if (pos != prev_pos || finished)
        engine.noteProgress();
    // Word movement proves the machine is alive: push the transaction
    // deadline out rather than racing a stalled-from-the-start clock.
    if (inTxn && (pos != prev_pos || finished))
        txnDeadline = now + txnTimeout;
    if (finished) {
        if (tracer) {
            tracer->emit(engine.now(), trace::EventKind::BusEnd, 0,
                         traceComp, opTrack(op), std::uint32_t(pos), 0);
        }
        // Inside a transaction every completed descriptor is journaled
        // so an abort can replay the attempt from the top. TxnBegin is
        // excluded: recoverTxn re-establishes its state itself.
        if (inTxn && op.kind != HostOp::Kind::TxnBegin
            && op.kind != HostOp::Kind::TxnEnd)
            journal.push_back(program.front());
        program.pop_front();
        pos = 0;
        computeLeft = 0;
        opAnnounced = false;
        ++statOpsDone;
    }
}

Cycle
Host::nextEventAt(Cycle now) const
{
    if (program.empty())
        return noEvent;
    // Inside a transaction the deadline is a hard wake-up: skipping
    // past it would delay recovery and change timing.
    Cycle wake = noEvent;
    if (inTxn)
        wake = txnDeadline > now ? txnDeadline : now;
    if (cooldown > 0)
        return std::min(wake, now + cooldown);
    const HostOp &op = program.front();
    switch (op.kind) {
      case HostOp::Kind::Compute:
        // tickCompute finishes in the cycle that decrements
        // computeLeft to zero.
        return std::min(wake,
                        computeLeft > 0 ? now + computeLeft - 1 : now);
      case HostOp::Kind::TxnBegin:
      case HostOp::Kind::TxnEnd:
      case HostOp::Kind::Reset:
        // Always able to make progress on the next tick.
        return now;
      case HostOp::Kind::Recv: {
        // The cooldown expired during a quiescent round: if the word
        // is already waiting we never stalled on it, so no FIFO hint
        // will announce it — the wake-up is ours to report.
        unsigned cell_idx = 0;
        while (!(op.cellMask & (1u << cell_idx)))
            ++cell_idx;
        if (cells[cell_idx]->tpo().canPop(now))
            return now;
        break;
      }
      case HostOp::Kind::Send:
      case HostOp::Kind::Call: {
        bool room = true;
        for (std::size_t c = 0; c < cells.size(); ++c) {
            if (!(op.cellMask & (1u << c)))
                continue;
            TimedFifo &q =
                op.kind == HostOp::Kind::Call
                    ? cells[c]->tpi()
                    : (op.target == SendTarget::TpX ? cells[c]->tpx()
                                                    : cells[c]->tpy());
            if (!q.canPush()) {
                room = false;
                break;
            }
        }
        if (room)
            return now;
        break;
      }
    }
    // Genuinely blocked on a cell queue (full interface FIFO or empty
    // tpo): only a cell action can unblock us — or, inside a
    // transaction, the recovery deadline.
    return wake;
}

void
Host::fastForward(Cycle from, Cycle cycles, sim::Engine &engine)
{
    (void)engine;
    if (program.empty() || cycles == 0)
        return;
    statBusy += cycles;
    if (cooldown > 0) {
        // The skip window never extends past the cooldown expiry.
        cooldown -= unsigned(cycles);
        return;
    }
    const HostOp &op = program.front();
    switch (op.kind) {
      case HostOp::Kind::Send:
      case HostOp::Kind::Call:
        statStallFull += cycles;
        sim::replayStalls(tracer, from, cycles, trace::StallWhy::BusFull,
                          traceComp, std::uint32_t(pos));
        break;
      case HostOp::Kind::Recv:
        statStallEmpty += cycles;
        sim::replayStalls(tracer, from, cycles,
                          trace::StallWhy::BusEmpty, traceComp,
                          std::uint32_t(pos));
        break;
      case HostOp::Kind::Compute:
        // The skip window never reaches the finishing cycle.
        computeLeft -= unsigned(cycles);
        break;
      case HostOp::Kind::TxnBegin:
      case HostOp::Kind::TxnEnd:
      case HostOp::Kind::Reset:
        // nextEventAt() reports `now` for these, so the engine never
        // opens a skip window over them.
        break;
    }
}

bool
Host::done() const
{
    return program.empty();
}

void
HostMemory::saveState(snap::Writer &w) const
{
    w.u64(mem.size());
    w.u64(brk);
    for (std::size_t i = 0; i < brk; ++i)
        w.u32(mem[i]);
}

void
HostMemory::loadState(snap::Reader &r)
{
    std::uint64_t size = r.u64();
    if (size != mem.size())
        r.fail("host memory size mismatch: snapshot has " +
               std::to_string(size) + " words, this machine has " +
               std::to_string(mem.size()));
    std::uint64_t frontier = r.u64();
    if (frontier > mem.size())
        r.fail("host memory frontier past the end");
    brk = std::size_t(frontier);
    for (std::size_t i = 0; i < brk; ++i)
        mem[i] = r.u32();
    std::fill(mem.begin() + std::ptrdiff_t(brk), mem.end(), 0);
}

namespace
{

void
saveRegion(snap::Writer &w, const Region &rg)
{
    w.u64(rg.rawBase());
    w.u64(rg.rawPerCol());
    w.u64(rg.rawStride());
    w.u64(rg.rawCols());
    w.u64(rg.rawLd());
}

Region
loadRegion(snap::Reader &r)
{
    std::size_t base = std::size_t(r.u64());
    std::size_t per_col = std::size_t(r.u64());
    std::size_t stride = std::size_t(r.u64());
    std::size_t cols = std::size_t(r.u64());
    std::size_t ld = std::size_t(r.u64());
    return Region::grid(base, per_col, stride, cols, ld);
}

void
saveOp(snap::Writer &w, const HostOp &op)
{
    w.u8(std::uint8_t(op.kind));
    w.u32(op.cellMask);
    w.u8(std::uint8_t(op.target));
    saveRegion(w, op.region);
    w.u32(std::uint32_t(op.callWords.size()));
    for (Word cw : op.callWords)
        w.u32(cw);
    w.u8(std::uint8_t(op.scalarOp));
    w.u64(op.scalarDst);
    w.u64(op.scalarDst2);
    w.u64(op.scalarSrc);
    w.u32(op.jobId);
    w.u64(op.timeoutCycles);
}

HostOp
loadOp(snap::Reader &r)
{
    HostOp op;
    std::uint8_t kind = r.u8();
    if (kind > std::uint8_t(HostOp::Kind::Reset))
        r.fail("bad host descriptor kind " + std::to_string(kind));
    op.kind = HostOp::Kind(kind);
    op.cellMask = r.u32();
    std::uint8_t target = r.u8();
    if (target > std::uint8_t(SendTarget::TpY))
        r.fail("bad host send target " + std::to_string(target));
    op.target = SendTarget(target);
    op.region = loadRegion(r);
    op.callWords.resize(r.u32());
    for (Word &cw : op.callWords)
        cw = r.u32();
    std::uint8_t scalar = r.u8();
    if (scalar > std::uint8_t(HostScalarOp::SqrtRecip))
        r.fail("bad host scalar op " + std::to_string(scalar));
    op.scalarOp = HostScalarOp(scalar);
    op.scalarDst = std::size_t(r.u64());
    op.scalarDst2 = std::size_t(r.u64());
    op.scalarSrc = std::size_t(r.u64());
    op.jobId = r.u32();
    op.timeoutCycles = r.u64();
    return op;
}

} // anonymous namespace

void
Host::saveState(snap::Writer &w) const
{
    w.u32(std::uint32_t(program.size()));
    for (const HostOp &op : program)
        saveOp(w, op);
    w.u64(pos);
    w.u32(cooldown);
    w.u32(computeLeft);

    w.b(inTxn);
    w.u32(txnJob);
    w.u32(txnMask);
    w.u64(txnTimeout);
    w.u64(txnDeadline);
    w.u32(txnRetries);
    w.b(parityTripped);
    w.u32(std::uint32_t(journal.size()));
    for (const HostOp &op : journal)
        saveOp(w, op);
    // The staging overlay is an unordered map: emit it address-sorted
    // so identical state always produces identical bytes.
    std::map<std::size_t, Word> sorted(staging.begin(), staging.end());
    w.u32(std::uint32_t(sorted.size()));
    for (const auto &[addr, word] : sorted) {
        w.u64(addr);
        w.u32(word);
    }
    w.u32(_deadMask);
    w.u32(std::uint32_t(_completedJobs.size()));
    for (std::uint32_t j : _completedJobs)
        w.u32(j);

    w.u32(std::uint32_t(cells.size()));
    for (std::size_t c = 0; c < cells.size(); ++c) {
        w.u32(busDrops[c]);
        w.u32(busDups[c]);
    }
    w.u32(memSpike);
    w.b(opAnnounced);
}

void
Host::loadState(snap::Reader &r, std::uint32_t version)
{
    (void)version;
    program.clear();
    std::uint32_t nprog = r.u32();
    for (std::uint32_t i = 0; i < nprog; ++i)
        program.push_back(loadOp(r));
    pos = std::size_t(r.u64());
    cooldown = r.u32();
    computeLeft = r.u32();

    inTxn = r.b();
    txnJob = r.u32();
    txnMask = r.u32();
    txnTimeout = r.u64();
    txnDeadline = r.u64();
    txnRetries = r.u32();
    parityTripped = r.b();
    journal.clear();
    std::uint32_t njournal = r.u32();
    for (std::uint32_t i = 0; i < njournal; ++i)
        journal.push_back(loadOp(r));
    staging.clear();
    std::uint32_t nstaged = r.u32();
    for (std::uint32_t i = 0; i < nstaged; ++i) {
        std::size_t addr = std::size_t(r.u64());
        Word word = r.u32();
        if (addr >= mem.size())
            r.fail("staged store out of memory range");
        staging[addr] = word;
    }
    _deadMask = r.u32();
    _completedJobs.assign(r.u32(), 0);
    for (std::uint32_t &j : _completedJobs)
        j = r.u32();

    if (r.u32() != cells.size())
        r.fail("host snapshot was taken with a different cell count");
    for (std::size_t c = 0; c < cells.size(); ++c) {
        busDrops[c] = r.u32();
        busDups[c] = r.u32();
    }
    memSpike = r.u32();
    opAnnounced = r.b();
}

std::string
Host::statusLine() const
{
    if (program.empty())
        return "program complete";
    const HostOp &op = program.front();
    const char *kind = "?";
    std::size_t total = 0;
    switch (op.kind) {
      case HostOp::Kind::Send:
        kind = "send";
        total = op.region.count();
        break;
      case HostOp::Kind::Recv:
        kind = "recv";
        total = op.region.count();
        break;
      case HostOp::Kind::Call:
        kind = "call";
        total = op.callWords.size();
        break;
      case HostOp::Kind::Compute:
        kind = "compute";
        total = 1;
        break;
      case HostOp::Kind::TxnBegin:
        kind = "txn-begin";
        total = 1;
        break;
      case HostOp::Kind::TxnEnd:
        kind = "txn-end";
        total = 1;
        break;
      case HostOp::Kind::Reset:
        kind = "reset";
        total = std::size_t(std::popcount(op.cellMask));
        break;
    }
    std::string line = strfmt("%s mask=%#x %zu/%zu, %zu ops queued", kind,
                              op.cellMask, pos, total, program.size());
    if (inTxn)
        line += strfmt(" [txn %u retry %u/%u]", txnJob, txnRetries,
                       cfg.recovery.retryBudget);
    return line;
}

} // namespace opac::host
