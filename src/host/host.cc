#include "host/host.hh"

#include <cmath>

#include "common/logging.hh"

namespace opac::host
{

HostOp
sendOp(std::uint32_t cell_mask, Region region, SendTarget target)
{
    HostOp op;
    op.kind = HostOp::Kind::Send;
    op.cellMask = cell_mask;
    op.region = region;
    op.target = target;
    return op;
}

HostOp
recvOp(unsigned cell, Region region)
{
    HostOp op;
    op.kind = HostOp::Kind::Recv;
    op.cellMask = 1u << cell;
    op.region = region;
    return op;
}

HostOp
callOp(std::uint32_t cell_mask, Word entry,
       const std::vector<std::int32_t> &params)
{
    HostOp op;
    op.kind = HostOp::Kind::Call;
    op.cellMask = cell_mask;
    op.callWords.push_back(entry);
    for (auto p : params)
        op.callWords.push_back(Word(p));
    return op;
}

HostOp
recipOp(std::size_t dst, std::size_t src)
{
    HostOp op;
    op.kind = HostOp::Kind::Compute;
    op.scalarOp = HostScalarOp::Recip;
    op.scalarDst = dst;
    op.scalarSrc = src;
    return op;
}

HostOp
sqrtRecipOp(std::size_t dst_sqrt, std::size_t dst_recip,
            std::size_t src)
{
    HostOp op;
    op.kind = HostOp::Kind::Compute;
    op.scalarOp = HostScalarOp::SqrtRecip;
    op.scalarDst = dst_sqrt;
    op.scalarDst2 = dst_recip;
    op.scalarSrc = src;
    return op;
}

std::vector<HostOp>
pmuReadProgram(unsigned cell, cell::PmuReg reg, std::size_t dst)
{
    return {
        callOp(1u << cell, cell::pmuCallEntry,
               {std::int32_t(std::uint32_t(reg))}),
        recvOp(cell, Region::vec(dst, 2)),
    };
}

Host::Host(std::string name, const HostConfig &cfg, HostMemory &mem,
           std::vector<cell::Cell *> cells,
           stats::StatGroup *parent_stats)
    : sim::Component(std::move(name)), cfg(cfg), mem(mem),
      cells(std::move(cells)), statGroup(Component::name(), parent_stats)
{
    opac_assert(!this->cells.empty(), "host with no cells");
    opac_assert(this->cells.size() <= 32, "cell mask limited to 32 cells");
    statGroup.addCounter("wordsSent", &statWordsSent,
                         "data words host -> cells");
    statGroup.addCounter("wordsReceived", &statWordsRecv,
                         "data words cells -> host");
    statGroup.addCounter("callWords", &statCallWords,
                         "call/parameter words sent");
    statGroup.addCounter("busyCycles", &statBusy,
                         "cycles with program remaining");
    statGroup.addCounter("stallFifoFull", &statStallFull,
                         "cycles blocked on a full interface queue");
    statGroup.addCounter("stallFifoEmpty", &statStallEmpty,
                         "cycles blocked on an empty tpo");
    statGroup.addCounter("opsCompleted", &statOpsDone,
                         "transfer descriptors completed");
}

void
Host::attachTracer(trace::Tracer *t)
{
    tracer = t;
    traceComp = t ? t->internComponent(name()) : 0;
    for (auto &track : kindTracks)
        track = 0;
}

std::uint16_t
Host::opTrack(const HostOp &op)
{
    static const char *names[] = {"send", "recv", "call", "compute"};
    auto i = std::size_t(op.kind);
    if (kindTracks[i] == 0)
        kindTracks[i] = tracer->internTrack(traceComp, names[i]);
    return kindTracks[i];
}

void
Host::traceWord(Cycle now, unsigned cost)
{
    tracer->emit(now, trace::EventKind::BusWord, 0, traceComp, 0,
                 std::uint32_t(pos), cost);
}

void
Host::enqueue(HostOp op)
{
    if (op.kind == HostOp::Kind::Compute)
        opac_assert(op.scalarDst < mem.size() && op.scalarSrc < mem.size(),
                    "compute op out of memory range");
    program.push_back(std::move(op));
}

void
Host::enqueue(const std::vector<HostOp> &ops)
{
    for (const auto &op : ops)
        enqueue(op);
}

bool
Host::tickSend(const HostOp &op, Cycle now)
{
    if (pos >= op.region.count())
        return true;
    // All addressed cells must have room (a broadcast is one bus write).
    for (std::size_t c = 0; c < cells.size(); ++c) {
        if (!(op.cellMask & (1u << c)))
            continue;
        TimedFifo &q = op.target == SendTarget::TpX ? cells[c]->tpx()
                                                    : cells[c]->tpy();
        if (!q.canPush()) {
            ++statStallFull;
            if (tracer) {
                tracer->emit(now, trace::EventKind::Stall,
                             std::uint8_t(trace::StallWhy::BusFull),
                             traceComp, 0, std::uint32_t(pos), 0);
            }
            return false;
        }
    }
    Word w = mem.load(op.region.addr(pos));
    for (std::size_t c = 0; c < cells.size(); ++c) {
        if (!(op.cellMask & (1u << c)))
            continue;
        TimedFifo &q = op.target == SendTarget::TpX ? cells[c]->tpx()
                                                    : cells[c]->tpy();
        q.push(w, now);
    }
    ++statWordsSent;
    ++pos;
    if (tracer)
        traceWord(now, cfg.tau);
    cooldown = cfg.tau > 0 ? cfg.tau - 1 : 0;
    return pos >= op.region.count();
}

bool
Host::tickRecv(const HostOp &op, Cycle now)
{
    if (pos >= op.region.count())
        return true;
    unsigned cell_idx = 0;
    while (!(op.cellMask & (1u << cell_idx)))
        ++cell_idx;
    TimedFifo &q = cells[cell_idx]->tpo();
    if (!q.canPop(now)) {
        ++statStallEmpty;
        if (tracer) {
            tracer->emit(now, trace::EventKind::Stall,
                         std::uint8_t(trace::StallWhy::BusEmpty),
                         traceComp, 0, std::uint32_t(pos), 0);
        }
        return false;
    }
    mem.store(op.region.addr(pos), q.pop(now));
    ++statWordsRecv;
    ++pos;
    if (tracer)
        traceWord(now, cfg.tau);
    cooldown = cfg.tau > 0 ? cfg.tau - 1 : 0;
    return pos >= op.region.count();
}

bool
Host::tickCall(const HostOp &op, Cycle now)
{
    if (pos >= op.callWords.size())
        return true;
    for (std::size_t c = 0; c < cells.size(); ++c) {
        if (!(op.cellMask & (1u << c)))
            continue;
        if (!cells[c]->tpi().canPush()) {
            ++statStallFull;
            if (tracer) {
                tracer->emit(now, trace::EventKind::Stall,
                             std::uint8_t(trace::StallWhy::BusFull),
                             traceComp, 0, std::uint32_t(pos), 0);
            }
            return false;
        }
    }
    for (std::size_t c = 0; c < cells.size(); ++c) {
        if (!(op.cellMask & (1u << c)))
            continue;
        cells[c]->tpi().push(op.callWords[pos], now);
    }
    ++statCallWords;
    ++pos;
    if (tracer)
        traceWord(now, cfg.callWordCost);
    cooldown = cfg.callWordCost > 0 ? cfg.callWordCost - 1 : 0;
    return pos >= op.callWords.size();
}

void
Host::applyScalar(const HostOp &op)
{
    switch (op.scalarOp) {
      case HostScalarOp::Recip: {
        float v = mem.loadF(op.scalarSrc);
        mem.storeF(op.scalarDst, 1.0f / v);
        break;
      }
      case HostScalarOp::SqrtRecip: {
        float v = mem.loadF(op.scalarSrc);
        float s = std::sqrt(v);
        mem.storeF(op.scalarDst, s);
        mem.storeF(op.scalarDst2, 1.0f / s);
        break;
      }
    }
}

bool
Host::tickCompute(const HostOp &op, Cycle now)
{
    (void)now;
    if (computeLeft == 0)
        computeLeft = cfg.recipCycles;
    if (--computeLeft == 0) {
        applyScalar(op);
        return true;
    }
    return false;
}

void
Host::tick(sim::Engine &engine)
{
    if (program.empty())
        return;
    ++statBusy;
    if (cooldown > 0) {
        // A pure countdown is not forward progress: it is fully
        // predictable (see nextEventAt), so the engine may skip it.
        --cooldown;
        return;
    }
    const HostOp &op = program.front();
    if (tracer && !opAnnounced) {
        opAnnounced = true;
        std::uint32_t total = 0;
        switch (op.kind) {
          case HostOp::Kind::Send:
          case HostOp::Kind::Recv:
            total = std::uint32_t(op.region.count());
            break;
          case HostOp::Kind::Call:
            total = std::uint32_t(op.callWords.size());
            break;
          case HostOp::Kind::Compute:
            total = 1;
            break;
        }
        tracer->emit(engine.now(), trace::EventKind::BusBegin, 0,
                     traceComp, opTrack(op), total, 0);
    }
    bool finished = false;
    std::size_t prev_pos = pos;
    switch (op.kind) {
      case HostOp::Kind::Send:
        finished = tickSend(op, engine.now());
        break;
      case HostOp::Kind::Recv:
        finished = tickRecv(op, engine.now());
        break;
      case HostOp::Kind::Call:
        finished = tickCall(op, engine.now());
        break;
      case HostOp::Kind::Compute:
        finished = tickCompute(op, engine.now());
        break;
    }
    // A Compute countdown cycle is not progress (it is predictable and
    // skippable, like the cooldown above); moving a word or finishing
    // a descriptor is.
    if (pos != prev_pos || finished)
        engine.noteProgress();
    if (finished) {
        if (tracer) {
            tracer->emit(engine.now(), trace::EventKind::BusEnd, 0,
                         traceComp, opTrack(op), std::uint32_t(pos), 0);
        }
        program.pop_front();
        pos = 0;
        computeLeft = 0;
        opAnnounced = false;
        ++statOpsDone;
    }
}

Cycle
Host::nextEventAt(Cycle now) const
{
    if (program.empty())
        return noEvent;
    if (cooldown > 0)
        return now + cooldown;
    const HostOp &op = program.front();
    switch (op.kind) {
      case HostOp::Kind::Compute:
        // tickCompute finishes in the cycle that decrements
        // computeLeft to zero.
        return computeLeft > 0 ? now + computeLeft - 1 : now;
      case HostOp::Kind::Recv: {
        // The cooldown expired during a quiescent round: if the word
        // is already waiting we never stalled on it, so no FIFO hint
        // will announce it — the wake-up is ours to report.
        unsigned cell_idx = 0;
        while (!(op.cellMask & (1u << cell_idx)))
            ++cell_idx;
        if (cells[cell_idx]->tpo().canPop(now))
            return now;
        break;
      }
      case HostOp::Kind::Send:
      case HostOp::Kind::Call: {
        bool room = true;
        for (std::size_t c = 0; c < cells.size(); ++c) {
            if (!(op.cellMask & (1u << c)))
                continue;
            TimedFifo &q =
                op.kind == HostOp::Kind::Call
                    ? cells[c]->tpi()
                    : (op.target == SendTarget::TpX ? cells[c]->tpx()
                                                    : cells[c]->tpy());
            if (!q.canPush()) {
                room = false;
                break;
            }
        }
        if (room)
            return now;
        break;
      }
    }
    // Genuinely blocked on a cell queue (full interface FIFO or empty
    // tpo): only a cell action can unblock us, and the cells' hints
    // cover the fall-through times of every interface queue.
    return noEvent;
}

void
Host::fastForward(Cycle from, Cycle cycles, sim::Engine &engine)
{
    (void)engine;
    if (program.empty() || cycles == 0)
        return;
    statBusy += cycles;
    if (cooldown > 0) {
        // The skip window never extends past the cooldown expiry.
        cooldown -= unsigned(cycles);
        return;
    }
    const HostOp &op = program.front();
    switch (op.kind) {
      case HostOp::Kind::Send:
      case HostOp::Kind::Call:
        statStallFull += cycles;
        if (tracer) {
            for (Cycle k = 0; k < cycles; ++k) {
                tracer->emit(from + k, trace::EventKind::Stall,
                             std::uint8_t(trace::StallWhy::BusFull),
                             traceComp, 0, std::uint32_t(pos), 0);
            }
        }
        break;
      case HostOp::Kind::Recv:
        statStallEmpty += cycles;
        if (tracer) {
            for (Cycle k = 0; k < cycles; ++k) {
                tracer->emit(from + k, trace::EventKind::Stall,
                             std::uint8_t(trace::StallWhy::BusEmpty),
                             traceComp, 0, std::uint32_t(pos), 0);
            }
        }
        break;
      case HostOp::Kind::Compute:
        // The skip window never reaches the finishing cycle.
        computeLeft -= unsigned(cycles);
        break;
    }
}

bool
Host::done() const
{
    return program.empty();
}

std::string
Host::statusLine() const
{
    if (program.empty())
        return "program complete";
    const HostOp &op = program.front();
    const char *kind = "?";
    std::size_t total = 0;
    switch (op.kind) {
      case HostOp::Kind::Send:
        kind = "send";
        total = op.region.count();
        break;
      case HostOp::Kind::Recv:
        kind = "recv";
        total = op.region.count();
        break;
      case HostOp::Kind::Call:
        kind = "call";
        total = op.callWords.size();
        break;
      case HostOp::Kind::Compute:
        kind = "compute";
        total = 1;
        break;
    }
    return strfmt("%s mask=%#x %zu/%zu, %zu ops queued", kind,
                  op.cellMask, pos, total, program.size());
}

} // namespace opac::host
