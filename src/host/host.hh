/**
 * @file
 * The host-processor model (paper section 4.1).
 *
 * The host is abstracted to the paper's own parameter: tau, the average
 * number of cycles it needs per floating-point word moved between its
 * global memory and the coprocessor (tau = 4 for first-generation RISC,
 * tau = 2 for superscalar). The host executes a sequential *transfer
 * program* of descriptors:
 *
 *  - Send:    stream a memory region into the tpx (or tpy) queues of one
 *             or several cells; a word sent to several cells at once is
 *             a single bus broadcast and costs one memory access;
 *  - Recv:    drain words from one cell's tpo into a memory region;
 *  - Call:    push a kernel entry word + parameters into tpi (cheap:
 *             these come from host registers, not memory);
 *  - Compute: a host-side scalar operation (reciprocal for pivots /
 *             triangular diagonals), costing a fixed cycle count.
 *
 * Descriptors execute strictly in order — the host is one processor —
 * and stall on FIFO full/empty, which is exactly how the asynchronous
 * host/coprocessor decoupling of the paper behaves.
 */

#ifndef OPAC_HOST_HOST_HH
#define OPAC_HOST_HOST_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "cell/cell.hh"
#include "stats/stats.hh"
#include "host/memory.hh"
#include "sim/engine.hh"

namespace opac::host
{

/** Host timing parameters. */
struct HostConfig
{
    unsigned tau = 2;           //!< cycles per word to/from host memory
    unsigned callWordCost = 1;  //!< cycles per call word
    unsigned recipCycles = 16;  //!< cycles for a scalar 1/x on the host
};

/** Which cell queue a Send targets. */
enum class SendTarget : std::uint8_t
{
    TpX,
    TpY,
};

/** Host-side scalar operations available to transfer programs. */
enum class HostScalarOp : std::uint8_t
{
    Recip,     //!< mem[dst] = 1.0f / mem[src]
    SqrtRecip, //!< mem[dst] = sqrt(mem[src]); mem[dst2] = 1 / mem[dst]
};

/** One descriptor of the host transfer program. */
struct HostOp
{
    enum class Kind : std::uint8_t
    {
        Send,
        Recv,
        Call,
        Compute,
    };

    Kind kind;
    std::uint32_t cellMask = 0;  //!< Send/Call: targets; Recv: one bit
    SendTarget target = SendTarget::TpX;
    Region region = Region::vec(0, 0);
    std::vector<Word> callWords; //!< Call: entry word + parameters
    HostScalarOp scalarOp = HostScalarOp::Recip;
    std::size_t scalarDst = 0;
    std::size_t scalarDst2 = 0;
    std::size_t scalarSrc = 0;
};

/** Convenience constructors for transfer programs. */
HostOp sendOp(std::uint32_t cell_mask, Region region,
              SendTarget target = SendTarget::TpX);
HostOp recvOp(unsigned cell, Region region);
HostOp callOp(std::uint32_t cell_mask, Word entry,
              const std::vector<std::int32_t> &params);
HostOp recipOp(std::size_t dst, std::size_t src);
HostOp sqrtRecipOp(std::size_t dst_sqrt, std::size_t dst_recip,
                   std::size_t src);

/**
 * Transfer program reading one PMU register of one cell: a status call
 * on tpi followed by a receive of the 64-bit value into host memory at
 * @p dst (two words, low half first).
 */
std::vector<HostOp> pmuReadProgram(unsigned cell, cell::PmuReg reg,
                                   std::size_t dst);

/** The host processor, a component on the common clock. */
class Host : public sim::Component
{
  public:
    Host(std::string name, const HostConfig &cfg, HostMemory &mem,
         std::vector<cell::Cell *> cells,
         stats::StatGroup *parent_stats = nullptr);

    /** Append a descriptor to the transfer program. */
    void enqueue(HostOp op);

    /** Append a whole program. */
    void enqueue(const std::vector<HostOp> &ops);

    // sim::Component interface.
    void tick(sim::Engine &engine) override;
    bool done() const override;
    std::string statusLine() const override;

    /**
     * Idle-cycle skipping support. The host's own future events are
     * its countdowns: the inter-word cooldown and the scalar-compute
     * latency. A blocked Send/Recv/Call only ever wakes when a cell
     * frees space or delivers a word, which the cells' hints cover,
     * so those states report noEvent.
     */
    Cycle nextEventAt(Cycle now) const override;
    void fastForward(Cycle from, Cycle cycles,
                     sim::Engine &engine) override;

    std::uint64_t wordsSent() const { return statWordsSent.value(); }
    std::uint64_t wordsReceived() const { return statWordsRecv.value(); }
    std::uint64_t callWordsSent() const { return statCallWords.value(); }

    /** The host's statistics subtree. */
    stats::StatGroup &stats() { return statGroup; }

    /**
     * Start emitting bus events (descriptor begin/end, one event per
     * word moved with its cycle cost, full/empty stalls) into @p t.
     * Costs one null-pointer test per event site when detached.
     */
    void attachTracer(trace::Tracer *t);

  private:
    bool tickSend(const HostOp &op, Cycle now);
    bool tickRecv(const HostOp &op, Cycle now);
    bool tickCall(const HostOp &op, Cycle now);
    bool tickCompute(const HostOp &op, Cycle now);
    void applyScalar(const HostOp &op);

    HostConfig cfg;
    HostMemory &mem;
    std::vector<cell::Cell *> cells;

    std::deque<HostOp> program;
    std::size_t pos = 0;       //!< word index within the current op
    unsigned cooldown = 0;     //!< cycles until the next memory access
    unsigned computeLeft = 0;  //!< remaining cycles of a Compute op

    trace::Tracer *tracer = nullptr;
    std::uint16_t traceComp = 0;
    bool opAnnounced = false;  //!< BusBegin emitted for the front op
    std::uint16_t kindTracks[4] = {0, 0, 0, 0}; //!< per HostOp::Kind

    std::uint16_t opTrack(const HostOp &op);
    void traceWord(Cycle now, unsigned cost);

    stats::StatGroup statGroup;
    stats::Counter statWordsSent;
    stats::Counter statWordsRecv;
    stats::Counter statCallWords;
    stats::Counter statBusy;
    stats::Counter statStallFull;
    stats::Counter statStallEmpty;
    stats::Counter statOpsDone;
};

} // namespace opac::host

#endif // OPAC_HOST_HOST_HH
