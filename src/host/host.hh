/**
 * @file
 * The host-processor model (paper section 4.1).
 *
 * The host is abstracted to the paper's own parameter: tau, the average
 * number of cycles it needs per floating-point word moved between its
 * global memory and the coprocessor (tau = 4 for first-generation RISC,
 * tau = 2 for superscalar). The host executes a sequential *transfer
 * program* of descriptors:
 *
 *  - Send:    stream a memory region into the tpx (or tpy) queues of one
 *             or several cells; a word sent to several cells at once is
 *             a single bus broadcast and costs one memory access;
 *  - Recv:    drain words from one cell's tpo into a memory region;
 *  - Call:    push a kernel entry word + parameters into tpi (cheap:
 *             these come from host registers, not memory);
 *  - Compute: a host-side scalar operation (reciprocal for pivots /
 *             triangular diagonals), costing a fixed cycle count.
 *
 * Descriptors execute strictly in order — the host is one processor —
 * and stall on FIFO full/empty, which is exactly how the asynchronous
 * host/coprocessor decoupling of the paper behaves.
 *
 * Fault recovery (docs/RESILIENCE.md) adds three more descriptors:
 *
 *  - TxnBegin: open a *recovery transaction* over a set of cells;
 *  - TxnEnd:   commit it — results written during the transaction are
 *              staged in an overlay and only reach memory here;
 *  - Reset:    pulse the reset line of the addressed cells (modeled as
 *              the reserved resetCallEntry word, decoded at the tpi
 *              write port so it works even when tpi is full).
 *
 * While a transaction is open the host journals every completed
 * descriptor and keeps a deadline that is pushed forward by any word
 * movement. A deadline miss or an uncorrectable-parity trip on a tpo
 * read aborts the attempt: the staged writes are discarded, the
 * transaction's cells are hard-reset, and the journal is replayed from
 * the top. When the retry budget runs out the host blames a cell,
 * marks it dead, and asks the planner (via the replan handler) to
 * rebuild the remaining work on the survivors.
 */

#ifndef OPAC_HOST_HOST_HH
#define OPAC_HOST_HOST_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>
#include <vector>

#include "cell/cell.hh"
#include "fault/fault.hh"
#include "stats/stats.hh"
#include "host/memory.hh"
#include "sim/engine.hh"

namespace opac::host
{

/** Host timing parameters. */
struct HostConfig
{
    unsigned tau = 2;           //!< cycles per word to/from host memory
    unsigned callWordCost = 1;  //!< cycles per call word
    unsigned recipCycles = 16;  //!< cycles for a scalar 1/x on the host
    fault::RecoveryConfig recovery; //!< timeout/retry/degradation policy
};

/** Which cell queue a Send targets. */
enum class SendTarget : std::uint8_t
{
    TpX,
    TpY,
};

/** Host-side scalar operations available to transfer programs. */
enum class HostScalarOp : std::uint8_t
{
    Recip,     //!< mem[dst] = 1.0f / mem[src]
    SqrtRecip, //!< mem[dst] = sqrt(mem[src]); mem[dst2] = 1 / mem[dst]
};

/** One descriptor of the host transfer program. */
struct HostOp
{
    enum class Kind : std::uint8_t
    {
        Send,
        Recv,
        Call,
        Compute,
        TxnBegin, //!< open a recovery transaction
        TxnEnd,   //!< commit it (flush the staging overlay)
        Reset,    //!< pulse the reset line of the masked cells
    };

    Kind kind;
    std::uint32_t cellMask = 0;  //!< Send/Call/Reset: targets; Recv: one bit
    SendTarget target = SendTarget::TpX;
    Region region = Region::vec(0, 0);
    std::vector<Word> callWords; //!< Call: entry word + parameters
    HostScalarOp scalarOp = HostScalarOp::Recip;
    std::size_t scalarDst = 0;
    std::size_t scalarDst2 = 0;
    std::size_t scalarSrc = 0;
    std::uint32_t jobId = 0;     //!< TxnBegin/TxnEnd: planner job id
    Cycle timeoutCycles = 0;     //!< TxnBegin: 0 = RecoveryConfig default
};

/** Convenience constructors for transfer programs. */
HostOp sendOp(std::uint32_t cell_mask, Region region,
              SendTarget target = SendTarget::TpX);
HostOp recvOp(unsigned cell, Region region);
HostOp callOp(std::uint32_t cell_mask, Word entry,
              const std::vector<std::int32_t> &params);
HostOp recipOp(std::size_t dst, std::size_t src);
HostOp sqrtRecipOp(std::size_t dst_sqrt, std::size_t dst_recip,
                   std::size_t src);
HostOp txnBeginOp(std::uint32_t job_id, std::uint32_t cell_mask,
                  Cycle timeout_cycles = 0);
HostOp txnEndOp(std::uint32_t job_id);
HostOp resetOp(std::uint32_t cell_mask);

/**
 * Transfer program reading one PMU register of one cell: a status call
 * on tpi followed by a receive of the 64-bit value into host memory at
 * @p dst (two words, low half first).
 */
std::vector<HostOp> pmuReadProgram(unsigned cell, cell::PmuReg reg,
                                   std::size_t dst);

/** The host processor, a component on the common clock. */
class Host : public sim::Component
{
  public:
    Host(std::string name, const HostConfig &cfg, HostMemory &mem,
         std::vector<cell::Cell *> cells,
         stats::StatGroup *parent_stats = nullptr);

    /** Append a descriptor to the transfer program. */
    void enqueue(HostOp op);

    /** Append a whole program. */
    void enqueue(const std::vector<HostOp> &ops);

    // sim::Component interface.
    void tick(sim::Engine &engine) override;
    bool done() const override;
    std::string statusLine() const override;

    /**
     * Snapshot support. The full transfer program (pending descriptors
     * plus the transaction journal and staging overlay) is serialized,
     * so a resumed host replays nothing and re-plans nothing — it
     * continues mid-descriptor. The replan handler is a callback and
     * cannot travel with the snapshot: the restorer must re-install it
     * (the planner layer does) before a degradation can fire.
     */
    std::uint32_t stateVersion() const override { return 1; }
    void saveState(snap::Writer &w) const override;
    void loadState(snap::Reader &r, std::uint32_t version) override;

    /**
     * Idle-cycle skipping support. The host's own future events are
     * its countdowns (the inter-word cooldown and the scalar-compute
     * latency) and, inside a transaction, the recovery deadline. A
     * blocked Send/Recv/Call only ever wakes when a cell frees space
     * or delivers a word, which the cells' hints cover, so those
     * states report only the deadline (noEvent outside transactions).
     */
    Cycle nextEventAt(Cycle now) const override;
    void fastForward(Cycle from, Cycle cycles,
                     sim::Engine &engine) override;

    std::uint64_t wordsSent() const { return statWordsSent.value(); }
    std::uint64_t wordsReceived() const { return statWordsRecv.value(); }
    std::uint64_t callWordsSent() const { return statCallWords.value(); }

    // --- fault recovery --------------------------------------------

    /**
     * Arm one bus-transfer fault against @p cell: the next data or
     * call word addressed to it is dropped (BusDrop) or duplicated
     * (BusDup). With link protection on (the cell's queues run a
     * parity mode other than Off) the modeled sequence tags catch the
     * mutation and the receiving cell enters the faulted state.
     */
    void armBusFault(unsigned cell, fault::FaultKind kind);

    /** Add @p cycles of extra latency to the next host memory access. */
    void armMemLatency(unsigned cycles);

    /**
     * Called when a transaction exhausts its retry budget and a cell
     * has been marked dead: the handler must enqueue a replacement
     * program covering all uncommitted jobs using only the cells in
     * @p alive_mask.
     */
    using ReplanFn = std::function<void(std::uint32_t alive_mask)>;
    void setReplanHandler(ReplanFn fn) { replanFn = std::move(fn); }

    /**
     * Engine-watchdog hook: abort and retry the open transaction even
     * though its deadline has not expired. Returns false when there is
     * nothing to recover (no open transaction), in which case the
     * watchdog should escalate to a deadlock error.
     */
    bool forceRecovery(sim::Engine &engine);

    std::uint32_t deadMask() const { return _deadMask; }
    std::uint32_t aliveMask() const
    {
        return (cells.size() >= 32 ? ~0u : ((1u << cells.size()) - 1u))
               & ~_deadMask;
    }

    /** Job ids whose transactions have committed, in commit order. */
    const std::vector<std::uint32_t> &completedJobs() const
    {
        return _completedJobs;
    }

    std::uint64_t timeouts() const { return statTimeouts.value(); }
    std::uint64_t retries() const { return statRetries.value(); }
    std::uint64_t deadCells() const { return statDeadCells.value(); }
    std::uint64_t txnsCommitted() const { return statTxnsDone.value(); }

    /** The host's statistics subtree. */
    stats::StatGroup &stats() { return statGroup; }

    /**
     * Start emitting bus events (descriptor begin/end, one event per
     * word moved with its cycle cost, full/empty stalls) into @p t.
     * Costs one null-pointer test per event site when detached.
     */
    void attachTracer(trace::Tracer *t);

  private:
    bool tickSend(const HostOp &op, Cycle now);
    bool tickRecv(const HostOp &op, Cycle now);
    bool tickCall(const HostOp &op, Cycle now);
    bool tickCompute(const HostOp &op, Cycle now);
    bool tickTxnBegin(const HostOp &op, Cycle now);
    bool tickTxnEnd(const HostOp &op, Cycle now);
    bool tickReset(const HostOp &op, Cycle now);
    void applyScalar(const HostOp &op);

    /**
     * Transaction-aware memory access: inside a transaction stores go
     * to the staging overlay and loads read through it, so an aborted
     * attempt leaves memory exactly as TxnBegin found it.
     */
    Word memLoad(std::size_t addr) const;
    void memStore(std::size_t addr, Word w);

    /** Abort the open transaction: reset, replay — or degrade. */
    void recoverTxn(Cycle now, sim::Engine &engine);

    /** Retry budget exhausted: pick the culprit cell to mark dead. */
    unsigned blameCell() const;

    /** Extra memory latency armed by a MemLatency fault, once. */
    unsigned takeMemSpike();

    /** Push @p w to @p q, applying armed drop/dup faults for cell @p c. */
    void pushFaulty(TimedFifo &q, unsigned c, Word w, Cycle now);

    HostConfig cfg;
    HostMemory &mem;
    std::vector<cell::Cell *> cells;

    std::deque<HostOp> program;
    std::size_t pos = 0;       //!< word index within the current op
    unsigned cooldown = 0;     //!< cycles until the next memory access
    unsigned computeLeft = 0;  //!< remaining cycles of a Compute op

    // -- transaction state ------------------------------------------
    bool inTxn = false;
    std::uint32_t txnJob = 0;
    std::uint32_t txnMask = 0;     //!< cells the open transaction uses
    Cycle txnTimeout = 0;          //!< progress deadline length
    Cycle txnDeadline = cycleNever;
    unsigned txnRetries = 0;       //!< aborted attempts so far
    bool parityTripped = false;    //!< tpo protection fired mid-recv
    std::vector<HostOp> journal;   //!< completed ops since TxnBegin
    std::unordered_map<std::size_t, Word> staging; //!< uncommitted stores
    std::uint32_t _deadMask = 0;
    std::vector<std::uint32_t> _completedJobs;
    ReplanFn replanFn;

    // -- armed faults (set by fault::Injector via Coprocessor) ------
    std::vector<unsigned> busDrops; //!< per-cell words to drop
    std::vector<unsigned> busDups;  //!< per-cell words to duplicate
    unsigned memSpike = 0;          //!< extra cycles on next access

    trace::Tracer *tracer = nullptr;
    std::uint16_t traceComp = 0;
    bool opAnnounced = false;  //!< BusBegin emitted for the front op
    std::uint16_t kindTracks[7] = {0, 0, 0, 0, 0, 0, 0}; //!< per Kind

    std::uint16_t opTrack(const HostOp &op);
    void traceWord(Cycle now, unsigned cost);

    stats::StatGroup statGroup;
    stats::Counter statWordsSent;
    stats::Counter statWordsRecv;
    stats::Counter statCallWords;
    stats::Counter statBusy;
    stats::Counter statStallFull;
    stats::Counter statStallEmpty;
    stats::Counter statOpsDone;
    stats::Counter statTimeouts;
    stats::Counter statRetries;
    stats::Counter statResets;
    stats::Counter statDeadCells;
    stats::Counter statTxnsDone;
    stats::Counter statBusDrops;
    stats::Counter statBusDups;
    stats::Counter statMemSpikes;
    stats::Counter statParityTrips;
};

} // namespace opac::host

#endif // OPAC_HOST_HOST_HH
