/**
 * @file
 * Host global memory and region descriptors.
 *
 * The host's memory is the home of all application data; the coprocessor
 * FIFOs only ever hold working sets. Transfers name memory locations
 * through Region descriptors: contiguous vectors, strided rows, or
 * column-major 2-D blocks (the shapes BLAS-style kernels need).
 */

#ifndef OPAC_HOST_MEMORY_HH
#define OPAC_HOST_MEMORY_HH

#include <algorithm>
#include <cstddef>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace opac::snap
{
class Writer;
class Reader;
} // namespace opac::snap

namespace opac::host
{

/** Flat word-addressed host memory with a bump allocator. */
class HostMemory
{
  public:
    explicit HostMemory(std::size_t words = 1 << 22) : mem(words, 0) {}

    /** Allocate @p n consecutive words; returns the base address. */
    std::size_t
    alloc(std::size_t n)
    {
        opac_assert(brk + n <= mem.size(),
                    "host memory exhausted (%zu + %zu > %zu)", brk, n,
                    mem.size());
        std::size_t base = brk;
        brk += n;
        return base;
    }

    /**
     * Current allocation frontier, for arena-style reuse: remember the
     * mark, allocate freely, then rewind() to release everything
     * allocated since. The job server uses this to recycle each
     * shard's memory between batches.
     */
    std::size_t mark() const { return brk; }

    /** Release (and zero) every word allocated since @p m. */
    void
    rewind(std::size_t m)
    {
        opac_assert(m <= brk, "rewind past the allocation frontier "
                    "(%zu > %zu)", m, brk);
        std::fill(mem.begin() + std::ptrdiff_t(m),
                  mem.begin() + std::ptrdiff_t(brk), 0);
        brk = m;
    }

    Word
    load(std::size_t addr) const
    {
        opac_assert(addr < mem.size(), "load out of range: %zu", addr);
        return mem[addr];
    }

    void
    store(std::size_t addr, Word w)
    {
        opac_assert(addr < mem.size(), "store out of range: %zu", addr);
        mem[addr] = w;
    }

    float loadF(std::size_t addr) const { return wordToFloat(load(addr)); }
    void storeF(std::size_t addr, float f) { store(addr, floatToWord(f)); }

    std::size_t size() const { return mem.size(); }

    /**
     * Snapshot support: serialize the allocation frontier and every
     * word below it. Words above the frontier are zero by construction
     * (rewind() scrubs them), so they are not stored; loadState()
     * re-zeroes them to restore the exact same image. Fails the load
     * when the snapshot was taken against a different memory size.
     */
    void saveState(snap::Writer &w) const;
    void loadState(snap::Reader &r);

  private:
    std::vector<Word> mem;
    std::size_t brk = 0;
};

/**
 * An ordered set of host-memory addresses: the source of a send or the
 * target of a receive. Supports contiguous, strided and column-major 2-D
 * shapes.
 */
class Region
{
  public:
    /** Contiguous n words starting at base. */
    static Region
    vec(std::size_t base, std::size_t n)
    {
        return Region{base, n, 1, 1, n};
    }

    /** n words with a fixed stride (e.g. a matrix row). */
    static Region
    strided(std::size_t base, std::size_t n, std::size_t stride)
    {
        return Region{base, n, stride, 1, n};
    }

    /** Column-major rows x cols block with leading dimension ld. */
    static Region
    mat(std::size_t base, std::size_t rows, std::size_t cols,
        std::size_t ld)
    {
        return Region{base, rows, 1, cols, ld};
    }

    /**
     * Fully general 2-D pattern: cols groups of per_col words, with
     * @p stride between words in a group and @p col_stride between
     * groups. Used e.g. for transposed sub-blocks.
     */
    static Region
    grid(std::size_t base, std::size_t per_col, std::size_t stride,
         std::size_t cols, std::size_t col_stride)
    {
        return Region{base, per_col, stride, cols, col_stride};
    }

    /** Total number of words addressed. */
    std::size_t count() const { return perCol * cols; }

    // Raw pattern accessors for snapshot serialization: a Region
    // round-trips as grid(rawBase, rawPerCol, rawStride, rawCols,
    // rawLd).
    std::size_t rawBase() const { return base; }
    std::size_t rawPerCol() const { return perCol; }
    std::size_t rawStride() const { return stride; }
    std::size_t rawCols() const { return cols; }
    std::size_t rawLd() const { return ld; }

    /** Address of the i-th word in transfer order (column by column). */
    std::size_t
    addr(std::size_t i) const
    {
        std::size_t c = i / perCol;
        std::size_t r = i % perCol;
        return base + c * ld + r * stride;
    }

  private:
    Region(std::size_t base, std::size_t per_col, std::size_t stride,
           std::size_t cols, std::size_t ld)
        : base(base), perCol(per_col), stride(stride), cols(cols), ld(ld)
    {}

    std::size_t base;
    std::size_t perCol; //!< words per column
    std::size_t stride; //!< stride between words within a column
    std::size_t cols;
    std::size_t ld;     //!< stride between columns
};

} // namespace opac::host

#endif // OPAC_HOST_MEMORY_HH
