#include "trace/aggregate.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/table.hh"

namespace opac::trace
{

std::uint64_t
Aggregate::CompStats::totalIssued() const
{
    std::uint64_t n = 0;
    for (auto v : issuedByClass)
        n += v;
    return n;
}

std::uint64_t
Aggregate::CompStats::totalStalls() const
{
    std::uint64_t n = 0;
    for (auto v : stallsByWhy)
        n += v;
    return n;
}

namespace
{

unsigned
depthBucket(std::uint32_t depth)
{
    if (depth == 0)
        return 0;
    unsigned b = 1;
    while (depth > 1) {
        depth >>= 1;
        ++b;
    }
    return b;
}

std::string
bucketLabel(unsigned i)
{
    if (i == 0)
        return "0";
    std::uint32_t lo = 1u << (i - 1);
    std::uint32_t hi = (1u << i) - 1;
    return lo == hi ? strfmt("%u", lo) : strfmt("%u-%u", lo, hi);
}

} // anonymous namespace

void
Aggregate::event(const Tracer &tracer, const Event &e)
{
    sawEvent = true;
    lastCycle = std::max(lastCycle, e.cycle);
    const std::string &comp = tracer.componentName(e.comp);
    switch (e.kind) {
      case EventKind::FifoPush:
      case EventKind::FifoPop:
      case EventKind::FifoRecirc:
      case EventKind::FifoReset: {
        FifoStats &f =
            fifoStats[comp + "." + tracer.trackName(e.track)];
        if (e.kind == EventKind::FifoPush)
            ++f.pushes;
        else if (e.kind == EventKind::FifoPop)
            ++f.pops;
        else if (e.kind == EventKind::FifoRecirc)
            ++f.recircs;
        else
            ++f.resets;
        std::uint32_t depth = e.kind == EventKind::FifoReset ? 0 : e.a;
        f.maxDepth = std::max(f.maxDepth, depth);
        f.depthSum += depth;
        ++f.depthSamples;
        unsigned bucket = depthBucket(depth);
        if (f.buckets.size() <= bucket)
            f.buckets.resize(bucket + 1, 0);
        ++f.buckets[bucket];
        break;
      }
      case EventKind::Issue:
        ++comps[comp].issuedByClass[e.arg % 5];
        break;
      case EventKind::Retire:
        ++comps[comp].retires;
        break;
      case EventKind::Stall:
        ++comps[comp].stallsByWhy[e.arg % 5];
        break;
      case EventKind::BusWord: {
        CompStats &c = comps[comp];
        ++c.busWordsMoved;
        c.busBusyCycles += e.b;
        break;
      }
      case EventKind::CallBegin:
        ++comps[comp].calls;
        break;
      case EventKind::Fault:
        ++comps[comp].faults;
        break;
      case EventKind::BusBegin:
      case EventKind::BusEnd:
      case EventKind::CallEnd:
        comps[comp]; // ensure the component appears in the report
        break;
    }
}

void
Aggregate::finish(const Tracer &tracer, Cycle end)
{
    (void)tracer;
    endCycle = end;
}

Cycle
Aggregate::span() const
{
    if (endCycle > 0)
        return endCycle;
    return sawEvent ? lastCycle + 1 : 0;
}

double
Aggregate::maPerCycle(const std::string &comp) const
{
    auto it = comps.find(comp);
    Cycle s = span();
    if (it == comps.end() || s == 0)
        return 0.0;
    return double(
               it->second.issuedByClass[std::size_t(OpClass::Fma)])
           / double(s);
}

double
Aggregate::totalMaPerCycle() const
{
    Cycle s = span();
    if (s == 0)
        return 0.0;
    std::uint64_t fma = 0;
    for (const auto &[name, c] : comps)
        fma += c.issuedByClass[std::size_t(OpClass::Fma)];
    return double(fma) / double(s);
}

double
Aggregate::utilization(const std::string &comp) const
{
    auto it = comps.find(comp);
    Cycle s = span();
    if (it == comps.end() || s == 0)
        return 0.0;
    return double(it->second.totalIssued()) / double(s);
}

double
Aggregate::busOccupancy(const std::string &comp) const
{
    auto it = comps.find(comp);
    Cycle s = span();
    if (it == comps.end() || s == 0)
        return 0.0;
    return double(it->second.busBusyCycles) / double(s);
}

std::string
Aggregate::report() const
{
    Cycle s = span();
    std::string out =
        strfmt("trace aggregate over %llu cycles\n\n",
               static_cast<unsigned long long>(s));

    TextTable util("component utilization (issues per elapsed cycle)");
    util.header({"component", "calls", "issued", "fma", "mul", "add",
                 "move", "ctrl", "util", "MA/cycle"});
    for (const auto &[name, c] : comps) {
        if (c.totalIssued() == 0 && c.calls == 0)
            continue;
        util.row({name, strfmt("%llu", (unsigned long long)c.calls),
                  strfmt("%llu", (unsigned long long)c.totalIssued()),
                  strfmt("%llu", (unsigned long long)
                         c.issuedByClass[std::size_t(OpClass::Fma)]),
                  strfmt("%llu", (unsigned long long)
                         c.issuedByClass[std::size_t(OpClass::Mul)]),
                  strfmt("%llu", (unsigned long long)
                         c.issuedByClass[std::size_t(OpClass::Add)]),
                  strfmt("%llu", (unsigned long long)
                         c.issuedByClass[std::size_t(OpClass::Move)]),
                  strfmt("%llu", (unsigned long long)
                         c.issuedByClass[std::size_t(OpClass::Control)]),
                  strfmt("%.3f", utilization(name)),
                  strfmt("%.3f", maPerCycle(name))});
    }
    out += util.render() + "\n";

    if (!fifoStats.empty()) {
        TextTable ft("FIFO traffic and depth (depth sampled at each "
                     "push/pop)");
        ft.header({"fifo", "pushes", "pops", "recirc", "resets", "max",
                   "mean", "depth histogram"});
        for (const auto &[name, f] : fifoStats) {
            std::string hist;
            for (std::size_t i = 0; i < f.buckets.size(); ++i) {
                if (f.buckets[i] == 0)
                    continue;
                if (!hist.empty())
                    hist += " ";
                hist += strfmt("%s:%llu", bucketLabel(unsigned(i)).c_str(),
                               (unsigned long long)f.buckets[i]);
            }
            ft.row({name, strfmt("%llu", (unsigned long long)f.pushes),
                    strfmt("%llu", (unsigned long long)f.pops),
                    strfmt("%llu", (unsigned long long)f.recircs),
                    strfmt("%llu", (unsigned long long)f.resets),
                    strfmt("%u", f.maxDepth),
                    strfmt("%.1f", f.meanDepth()), hist});
        }
        out += ft.render() + "\n";
    }

    bool any_bus = false;
    for (const auto &[name, c] : comps)
        any_bus = any_bus || c.busWordsMoved > 0;
    if (any_bus) {
        TextTable bt("host bus");
        bt.header({"component", "words", "busy cycles", "occupancy"});
        for (const auto &[name, c] : comps) {
            if (c.busWordsMoved == 0)
                continue;
            bt.row({name,
                    strfmt("%llu", (unsigned long long)c.busWordsMoved),
                    strfmt("%llu", (unsigned long long)c.busBusyCycles),
                    strfmt("%.3f", busOccupancy(name))});
        }
        out += bt.render() + "\n";
    }

    bool any_stall = false;
    for (const auto &[name, c] : comps)
        any_stall = any_stall || c.totalStalls() > 0;
    if (any_stall) {
        TextTable st("stall causes (cycles a ready instruction or bus "
                     "word could not proceed)");
        st.header({"component", "cause", "cycles", "% of run"});
        for (const auto &[name, c] : comps) {
            for (std::size_t w = 0; w < c.stallsByWhy.size(); ++w) {
                if (c.stallsByWhy[w] == 0)
                    continue;
                st.row({name, stallWhyName(StallWhy(w)),
                        strfmt("%llu",
                               (unsigned long long)c.stallsByWhy[w]),
                        strfmt("%.1f", s ? 100.0 * double(c.stallsByWhy[w])
                                               / double(s)
                                         : 0.0)});
            }
        }
        out += st.render() + "\n";
    }
    return out;
}

std::vector<Aggregate::StallEntry>
Aggregate::topStalls(std::size_t n) const
{
    std::vector<StallEntry> all;
    for (const auto &[name, c] : comps) {
        for (std::size_t w = 0; w < c.stallsByWhy.size(); ++w) {
            if (c.stallsByWhy[w] > 0)
                all.push_back({name, StallWhy(w), c.stallsByWhy[w]});
        }
    }
    std::stable_sort(all.begin(), all.end(),
                     [](const StallEntry &a, const StallEntry &b) {
                         return a.cycles > b.cycles;
                     });
    if (all.size() > n)
        all.resize(n);
    return all;
}

std::string
Aggregate::topStallsReport(std::size_t n) const
{
    auto top = topStalls(n);
    Cycle s = span();
    TextTable t(strfmt("top %zu stall sources (of the whole run's %llu "
                       "cycles)", n, (unsigned long long)s));
    t.header({"rank", "component", "cause", "cycles", "% of run"});
    std::size_t rank = 1;
    for (const auto &e : top) {
        t.row({strfmt("%zu", rank++), e.comp, stallWhyName(e.why),
               strfmt("%llu", (unsigned long long)e.cycles),
               strfmt("%.1f",
                      s ? 100.0 * double(e.cycles) / double(s) : 0.0)});
    }
    if (top.empty())
        t.row({"-", "-", "-", "0", "0.0"});
    return t.render();
}

} // namespace opac::trace
