#include "trace/trace.hh"

#include <map>

#include "common/logging.hh"

namespace opac::trace
{

const char *
eventKindName(EventKind k)
{
    switch (k) {
      case EventKind::FifoPush:
        return "fifo_push";
      case EventKind::FifoPop:
        return "fifo_pop";
      case EventKind::FifoRecirc:
        return "fifo_recirc";
      case EventKind::FifoReset:
        return "fifo_reset";
      case EventKind::Issue:
        return "issue";
      case EventKind::Retire:
        return "retire";
      case EventKind::Stall:
        return "stall";
      case EventKind::BusBegin:
        return "bus_begin";
      case EventKind::BusWord:
        return "bus_word";
      case EventKind::BusEnd:
        return "bus_end";
      case EventKind::CallBegin:
        return "call_begin";
      case EventKind::CallEnd:
        return "call_end";
      case EventKind::Fault:
        return "fault";
    }
    return "?";
}

const char *
opClassName(OpClass c)
{
    switch (c) {
      case OpClass::Fma:
        return "fma";
      case OpClass::Mul:
        return "mul";
      case OpClass::Add:
        return "add";
      case OpClass::Move:
        return "move";
      case OpClass::Control:
        return "control";
    }
    return "?";
}

const char *
stallWhyName(StallWhy w)
{
    switch (w) {
      case StallWhy::SrcEmpty:
        return "src-empty";
      case StallWhy::DstFull:
        return "dst-full";
      case StallWhy::RegPending:
        return "reg-pending";
      case StallWhy::BusFull:
        return "bus-full";
      case StallWhy::BusEmpty:
        return "bus-empty";
    }
    return "?";
}

thread_local unsigned Tracer::tlsEmitSlot = 0;

void
Tracer::beginOrdered(unsigned slots)
{
    opac_assert(!_ordered, "tracer already in ordered mode");
    _ordered = true;
    _slotBuf.assign(slots, {});
    tlsEmitSlot = 0;
}

void
Tracer::flushOrdered(Cycle watermark)
{
    // Repeatedly pick the lowest staged cycle below the watermark and
    // drain every slot's run of events at that cycle, in slot order.
    // Per-slot queues are cycle-sorted by construction (live ticks
    // emit at the current cycle, replays ascend through past cycles),
    // so only the fronts need comparing.
    for (;;) {
        Cycle c = cycleNever;
        for (const auto &q : _slotBuf) {
            if (!q.empty() && q.front().cycle < c)
                c = q.front().cycle;
        }
        if (c == cycleNever || c >= watermark)
            return;
        for (auto &q : _slotBuf) {
            while (!q.empty() && q.front().cycle == c) {
                deliver(q.front());
                q.pop_front();
            }
        }
    }
}

void
Tracer::endOrdered()
{
    if (!_ordered)
        return;
    flushOrdered(cycleNever);
    _slotBuf.clear();
    _ordered = false;
}

std::uint16_t
Tracer::internComponent(const std::string &name)
{
    for (std::size_t i = 1; i < compNames.size(); ++i) {
        if (compNames[i] == name)
            return std::uint16_t(i);
    }
    opac_assert(compNames.size() < 0xffff, "component id space exhausted");
    compNames.push_back(name);
    return std::uint16_t(compNames.size() - 1);
}

std::uint16_t
Tracer::internTrack(std::uint16_t comp, const std::string &name)
{
    for (std::size_t i = 1; i < trackNames.size(); ++i) {
        if (trackOwner[i] == comp && trackNames[i] == name)
            return std::uint16_t(i);
    }
    opac_assert(trackNames.size() < 0xffff, "track id space exhausted");
    trackNames.push_back(name);
    trackOwner.push_back(comp);
    return std::uint16_t(trackNames.size() - 1);
}

void
Tracer::noteRecent(const Event &e)
{
    if (recentDepth == 0)
        return;
    if (recent.size() <= e.comp)
        recent.resize(e.comp + 1);
    auto &ring = recent[e.comp];
    ring.push_back(e);
    if (ring.size() > recentDepth)
        ring.pop_front();
}

void
Tracer::finish(Cycle end)
{
    if (finished)
        return;
    finished = true;
    for (Sink *s : sinks)
        s->finish(*this, end);
}

std::string
Tracer::formatEvent(const Event &e) const
{
    std::string detail;
    switch (e.kind) {
      case EventKind::Issue:
        detail = strfmt("%s pc=%u latency=%u",
                        opClassName(OpClass(e.arg)), e.a, e.b);
        break;
      case EventKind::Stall:
        detail = strfmt("%s at=%u", stallWhyName(StallWhy(e.arg)), e.a);
        break;
      case EventKind::FifoPush:
      case EventKind::FifoPop:
      case EventKind::FifoRecirc:
        detail = strfmt("depth=%u word=%#x", e.a, e.b);
        break;
      case EventKind::FifoReset:
        detail = strfmt("dropped=%u", e.a);
        break;
      case EventKind::Retire:
        detail = strfmt("mask=%#x value=%#x", e.a, e.b);
        break;
      case EventKind::BusBegin:
      case EventKind::BusEnd:
        detail = strfmt("words=%u", e.a);
        break;
      case EventKind::BusWord:
        detail = strfmt("index=%u cost=%u", e.a, e.b);
        break;
      case EventKind::CallBegin:
        detail = strfmt("entry=%u", e.a);
        break;
      case EventKind::CallEnd:
        break;
      case EventKind::Fault:
        detail = strfmt("kind=%u cell=%u payload=%#x", e.arg, e.a, e.b);
        break;
    }
    return strfmt("%llu %s %s%s%s %s",
                  static_cast<unsigned long long>(e.cycle),
                  componentName(e.comp).c_str(),
                  eventKindName(e.kind),
                  e.track ? " " : "",
                  e.track ? trackName(e.track).c_str() : "",
                  detail.c_str());
}

std::string
Tracer::recentReport() const
{
    std::string out;
    for (std::size_t c = 0; c < recent.size(); ++c) {
        if (recent[c].empty())
            continue;
        out += strfmt("  recent trace events of %s:\n",
                      componentName(std::uint16_t(c)).c_str());
        for (const Event &e : recent[c])
            out += strfmt("    %s\n", formatEvent(e).c_str());
    }
    if (out.empty())
        out = "  (no trace events recorded)\n";
    return out;
}

} // namespace opac::trace
