/**
 * @file
 * File-format sinks for the trace stream.
 *
 *  - ChromeTraceSink writes the Chrome trace-event JSON format (open
 *    the file in chrome://tracing or https://ui.perfetto.dev): one
 *    process per simulator component, B/E duration slices for kernel
 *    calls and bus descriptors, instants for issues/stalls/retires,
 *    and counter tracks for FIFO depths and cumulative bus words.
 *    One simulated cycle maps to one microsecond of trace time.
 *
 *  - CsvSink writes one event per line
 *    (`cycle,component,track,kind,arg,a,b`) — the lossless archival
 *    form, readable back with readCsv() for offline aggregation by
 *    tools/trace_report.
 *
 * Both sinks stream: events are formatted as they arrive and nothing
 * is retained in memory, so multi-million-event traces are fine.
 */

#ifndef OPAC_TRACE_SINKS_HH
#define OPAC_TRACE_SINKS_HH

#include <iosfwd>
#include <map>
#include <set>
#include <string>

#include "trace/trace.hh"

namespace opac::trace
{

/** Streams Chrome trace-event JSON to an ostream. */
class ChromeTraceSink : public Sink
{
  public:
    /** @param out Destination stream; must outlive the sink. */
    explicit ChromeTraceSink(std::ostream &out);

    void event(const Tracer &tracer, const Event &e) override;
    void finish(const Tracer &tracer, Cycle end) override;

  private:
    void emitRecord(const std::string &body);
    void ensureProcessMeta(const Tracer &tracer, std::uint16_t comp);
    void ensureThreadMeta(const Tracer &tracer, std::uint16_t comp,
                          unsigned tid, const char *name);

    std::ostream &out;
    bool first = true;
    bool closed = false;
    std::set<std::uint16_t> knownProcs;
    std::set<std::pair<std::uint16_t, unsigned>> knownThreads;
    std::map<std::uint16_t, std::uint64_t> busWords; //!< per host comp
};

/** Streams the lossless CSV form to an ostream. */
class CsvSink : public Sink
{
  public:
    explicit CsvSink(std::ostream &out);

    void event(const Tracer &tracer, const Event &e) override;
    void finish(const Tracer &tracer, Cycle end) override;

  private:
    std::ostream &out;
};

/**
 * Parse a CSV trace (as written by CsvSink) from @p in, re-interning
 * names into @p tracer and re-emitting every event to its sinks.
 * Returns false with a message in @p err on malformed input.
 */
bool readCsv(std::istream &in, Tracer &tracer, std::string *err = nullptr);

} // namespace opac::trace

#endif // OPAC_TRACE_SINKS_HH
