/**
 * @file
 * In-memory trace aggregation: turns the event stream into the
 * paper-facing occupancy numbers without retaining events.
 *
 * Computes, per component: issue counts by op class, utilization
 * (issues per elapsed cycle), multiply-add occupancy (the paper's
 * MA/cycle metric), a stall-cause breakdown, bus-word traffic and the
 * fraction of elapsed cycles the host bus was moving data; per FIFO:
 * push/pop/recirculate totals and a power-of-two depth histogram.
 *
 * Registered as a regular Sink, so it can aggregate live during a
 * simulation or offline from a CSV trace replay (tools/trace_report).
 */

#ifndef OPAC_TRACE_AGGREGATE_HH
#define OPAC_TRACE_AGGREGATE_HH

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "trace/trace.hh"

namespace opac::trace
{

/** Streaming reducer over the event stream. */
class Aggregate : public Sink
{
  public:
    struct CompStats
    {
        std::array<std::uint64_t, 5> issuedByClass{}; //!< by OpClass
        std::array<std::uint64_t, 5> stallsByWhy{};   //!< by StallWhy
        std::uint64_t retires = 0;
        std::uint64_t calls = 0;
        std::uint64_t busWordsMoved = 0;
        std::uint64_t busBusyCycles = 0;
        std::uint64_t faults = 0; //!< injected faults armed here

        std::uint64_t totalIssued() const;
        std::uint64_t totalStalls() const;
    };

    struct FifoStats
    {
        std::uint64_t pushes = 0;
        std::uint64_t pops = 0;
        std::uint64_t recircs = 0;
        std::uint64_t resets = 0;
        std::uint32_t maxDepth = 0;
        double depthSum = 0.0;
        std::uint64_t depthSamples = 0;
        /** Depth histogram: bucket 0 holds depth 0, bucket i >= 1
         *  holds depths in [2^(i-1), 2^i). */
        std::vector<std::uint64_t> buckets;

        double meanDepth() const
        {
            return depthSamples ? depthSum / double(depthSamples) : 0.0;
        }
    };

    // Sink interface.
    void event(const Tracer &tracer, const Event &e) override;
    void finish(const Tracer &tracer, Cycle end) override;

    /** Elapsed cycles (finish() end, or last event cycle + 1). */
    Cycle span() const;

    /** Multiply-add issues per elapsed cycle for one component. */
    double maPerCycle(const std::string &comp) const;

    /** Multiply-add issues per elapsed cycle summed over components. */
    double totalMaPerCycle() const;

    /** Issues of any class per elapsed cycle for one component. */
    double utilization(const std::string &comp) const;

    /** Fraction of elapsed cycles @p comp spent moving bus words. */
    double busOccupancy(const std::string &comp) const;

    const std::map<std::string, CompStats> &components() const
    {
        return comps;
    }
    const std::map<std::string, FifoStats> &fifos() const
    {
        return fifoStats;
    }

    /** Render every table (utilization, FIFOs, bus, stalls) as text. */
    std::string report() const;

    /** One (component, cause) stall total. */
    struct StallEntry
    {
        std::string comp;
        StallWhy why;
        std::uint64_t cycles;
    };

    /** The @p n largest (component, cause) stall totals, descending. */
    std::vector<StallEntry> topStalls(std::size_t n) const;

    /** topStalls(n) rendered as a ranked text table. */
    std::string topStallsReport(std::size_t n) const;

  private:
    std::map<std::string, CompStats> comps;
    std::map<std::string, FifoStats> fifoStats; //!< key "comp.fifo"
    Cycle lastCycle = 0;
    Cycle endCycle = 0;
    bool sawEvent = false;
};

} // namespace opac::trace

#endif // OPAC_TRACE_AGGREGATE_HH
