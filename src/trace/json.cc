#include "trace/json.hh"

#include <cctype>
#include <cstdlib>

#include "common/logging.hh"

namespace opac::trace::json
{

const Value *
Value::find(const std::string &key) const
{
    if (type != Type::Object)
        return nullptr;
    for (const auto &[k, v] : object) {
        if (k == key)
            return &v;
    }
    return nullptr;
}

namespace
{

class Parser
{
  public:
    Parser(const std::string &text, std::string *err)
        : text(text), err(err)
    {}

    bool
    run(Value &out)
    {
        skipSpace();
        if (!parseValue(out))
            return false;
        skipSpace();
        if (pos != text.size())
            return fail("trailing characters after document");
        return true;
    }

  private:
    bool
    fail(const std::string &what)
    {
        if (err)
            *err = strfmt("json error at offset %zu: %s", pos,
                          what.c_str());
        return false;
    }

    void
    skipSpace()
    {
        while (pos < text.size() && std::isspace(
                   static_cast<unsigned char>(text[pos]))) {
            ++pos;
        }
    }

    bool
    literal(const char *word, Value &out, Value::Type type, bool b)
    {
        std::size_t n = std::string(word).size();
        if (text.compare(pos, n, word) != 0)
            return fail(strfmt("expected '%s'", word));
        pos += n;
        out.type = type;
        out.boolean = b;
        return true;
    }

    bool
    parseString(std::string &out)
    {
        if (pos >= text.size() || text[pos] != '"')
            return fail("expected string");
        ++pos;
        while (pos < text.size()) {
            char c = text[pos++];
            if (c == '"')
                return true;
            if (c == '\\') {
                if (pos >= text.size())
                    return fail("unterminated escape");
                char e = text[pos++];
                switch (e) {
                  case '"': out += '"'; break;
                  case '\\': out += '\\'; break;
                  case '/': out += '/'; break;
                  case 'b': out += '\b'; break;
                  case 'f': out += '\f'; break;
                  case 'n': out += '\n'; break;
                  case 'r': out += '\r'; break;
                  case 't': out += '\t'; break;
                  case 'u': {
                    if (pos + 4 > text.size())
                        return fail("truncated \\u escape");
                    unsigned code = 0;
                    for (int i = 0; i < 4; ++i) {
                        char h = text[pos++];
                        code <<= 4;
                        if (h >= '0' && h <= '9')
                            code += unsigned(h - '0');
                        else if (h >= 'a' && h <= 'f')
                            code += unsigned(h - 'a' + 10);
                        else if (h >= 'A' && h <= 'F')
                            code += unsigned(h - 'A' + 10);
                        else
                            return fail("bad \\u escape digit");
                    }
                    // UTF-8 encode the BMP code point (no surrogate
                    // pairing; trace names are ASCII in practice).
                    if (code < 0x80) {
                        out += char(code);
                    } else if (code < 0x800) {
                        out += char(0xc0 | (code >> 6));
                        out += char(0x80 | (code & 0x3f));
                    } else {
                        out += char(0xe0 | (code >> 12));
                        out += char(0x80 | ((code >> 6) & 0x3f));
                        out += char(0x80 | (code & 0x3f));
                    }
                    break;
                  }
                  default:
                    return fail("unknown escape character");
                }
            } else if (static_cast<unsigned char>(c) < 0x20) {
                return fail("unescaped control character in string");
            } else {
                out += c;
            }
        }
        return fail("unterminated string");
    }

    bool
    parseNumber(Value &out)
    {
        std::size_t start = pos;
        if (pos < text.size() && text[pos] == '-')
            ++pos;
        auto digits = [&] {
            std::size_t before = pos;
            while (pos < text.size() && std::isdigit(
                       static_cast<unsigned char>(text[pos]))) {
                ++pos;
            }
            return pos > before;
        };
        if (!digits())
            return fail("expected digits");
        if (pos < text.size() && text[pos] == '.') {
            ++pos;
            if (!digits())
                return fail("expected fraction digits");
        }
        if (pos < text.size() && (text[pos] == 'e' || text[pos] == 'E')) {
            ++pos;
            if (pos < text.size()
                && (text[pos] == '+' || text[pos] == '-')) {
                ++pos;
            }
            if (!digits())
                return fail("expected exponent digits");
        }
        out.type = Value::Type::Number;
        out.number = std::strtod(text.substr(start, pos - start).c_str(),
                                 nullptr);
        return true;
    }

    bool
    parseValue(Value &out)
    {
        if (depth > 200)
            return fail("nesting too deep");
        skipSpace();
        if (pos >= text.size())
            return fail("unexpected end of input");
        char c = text[pos];
        switch (c) {
          case '{': {
            ++pos;
            ++depth;
            out.type = Value::Type::Object;
            skipSpace();
            if (pos < text.size() && text[pos] == '}') {
                ++pos;
                --depth;
                return true;
            }
            while (true) {
                skipSpace();
                std::string key;
                if (!parseString(key))
                    return false;
                skipSpace();
                if (pos >= text.size() || text[pos] != ':')
                    return fail("expected ':'");
                ++pos;
                Value v;
                if (!parseValue(v))
                    return false;
                out.object.emplace_back(std::move(key), std::move(v));
                skipSpace();
                if (pos < text.size() && text[pos] == ',') {
                    ++pos;
                    continue;
                }
                if (pos < text.size() && text[pos] == '}') {
                    ++pos;
                    --depth;
                    return true;
                }
                return fail("expected ',' or '}'");
            }
          }
          case '[': {
            ++pos;
            ++depth;
            out.type = Value::Type::Array;
            skipSpace();
            if (pos < text.size() && text[pos] == ']') {
                ++pos;
                --depth;
                return true;
            }
            while (true) {
                Value v;
                if (!parseValue(v))
                    return false;
                out.array.push_back(std::move(v));
                skipSpace();
                if (pos < text.size() && text[pos] == ',') {
                    ++pos;
                    continue;
                }
                if (pos < text.size() && text[pos] == ']') {
                    ++pos;
                    --depth;
                    return true;
                }
                return fail("expected ',' or ']'");
            }
          }
          case '"':
            out.type = Value::Type::String;
            return parseString(out.str);
          case 't':
            return literal("true", out, Value::Type::Bool, true);
          case 'f':
            return literal("false", out, Value::Type::Bool, false);
          case 'n':
            return literal("null", out, Value::Type::Null, false);
          default:
            return parseNumber(out);
        }
    }

    const std::string &text;
    std::string *err;
    std::size_t pos = 0;
    unsigned depth = 0;
};

} // anonymous namespace

bool
parse(const std::string &text, Value &out, std::string *err)
{
    return Parser(text, err).run(out);
}

std::string
escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += strfmt("\\u%04x", unsigned(c));
            else
                out += c;
        }
    }
    return out;
}

} // namespace opac::trace::json
