/**
 * @file
 * Cycle-accurate event tracing for the OPAC simulator.
 *
 * The paper's claims are occupancy claims — one multiply-add per cycle,
 * FIFO queues that never stall the datapath, host-bus bandwidth (tau)
 * bounding multi-cell efficiency — so the simulator records *events*:
 * FIFO push/pop/recirculate with resulting depth, instruction issue and
 * writeback retire in the cell, bus descriptor grant/word/completion in
 * the host, and kernel call begin/end in the sequencer.
 *
 * Components hold a `Tracer *` that is null by default; every emission
 * site is guarded by that single pointer test, so a build without an
 * attached tracer pays one predictable branch per event site and
 * nothing else. When a tracer is attached, events stream to pluggable
 * sinks (Chrome trace-event JSON, CSV, in-memory aggregation) as they
 * are emitted; nothing is buffered centrally except a small per-
 * component ring of recent events used by the deadlock watchdog's
 * abort report.
 *
 * Component and track names are interned to 16-bit ids once, at
 * attach time, so an event is a 24-byte POD and emission is a few
 * stores plus one virtual call per sink.
 */

#ifndef OPAC_TRACE_TRACE_HH
#define OPAC_TRACE_TRACE_HH

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/types.hh"

namespace opac::trace
{

/** What happened. Kind-specific argument meanings are listed inline. */
enum class EventKind : std::uint8_t
{
    FifoPush,    //!< arg: 1 = reserved-slot push; a: depth after; b: word
    FifoPop,     //!< a: depth after; b: word popped
    FifoRecirc,  //!< pop + same-cycle repush; a: depth (unchanged); b: word
    FifoReset,   //!< a: words discarded
    Issue,       //!< arg: OpClass; a: pc; b: result latency (cycles)
    Retire,      //!< writeback landed; a: destination mask; b: value
    Stall,       //!< arg: StallWhy; a: pc (cell) or op progress (host)
    BusBegin,    //!< transfer descriptor granted the bus; a: total words
    BusWord,     //!< one word moved; a: word index; b: bus cycles consumed
    BusEnd,      //!< descriptor complete; a: words moved
    CallBegin,   //!< kernel call dispatched; a: entry id
    CallEnd,     //!< kernel ran to Halt
    Fault,       //!< injected fault armed; arg: FaultKind; a: cell; b: payload
};

/** Issue-event classification (EventKind::Issue, Event::arg). */
enum class OpClass : std::uint8_t
{
    Fma,     //!< chained multiply-add
    Mul,     //!< multiply only
    Add,     //!< add only
    Move,    //!< move-path transfer only
    Control, //!< SetParam / ResetFifo and similar
};

/** Stall-event cause (EventKind::Stall, Event::arg). */
enum class StallWhy : std::uint8_t
{
    SrcEmpty,   //!< waiting on an operand queue
    DstFull,    //!< waiting on space in a result queue
    RegPending, //!< waiting on an in-flight register write
    BusFull,    //!< host blocked: interface queue full
    BusEmpty,   //!< host blocked: tpo drained
};

/** One trace record. POD; meaning of arg/a/b depends on kind. */
struct Event
{
    Cycle cycle;
    EventKind kind;
    std::uint8_t arg;
    std::uint16_t comp;  //!< interned component id
    std::uint16_t track; //!< interned sub-track id, 0 = component itself
    std::uint32_t a;
    std::uint32_t b;
};

const char *eventKindName(EventKind k);
const char *opClassName(OpClass c);
const char *stallWhyName(StallWhy w);

class Tracer;

/** Consumes the event stream; register with Tracer::addSink(). */
class Sink
{
  public:
    virtual ~Sink() = default;

    /** One event, in emission order (cycles are non-decreasing). */
    virtual void event(const Tracer &tracer, const Event &e) = 0;

    /** Called once from Tracer::finish() with the final cycle count. */
    virtual void finish(const Tracer &tracer, Cycle end) { (void)tracer;
                                                           (void)end; }
};

/**
 * The event recorder: intern tables, sink fan-out and the recent-event
 * rings. Components receive a pointer via their attachTracer() methods
 * and must check it for null before emitting.
 */
class Tracer
{
  public:
    explicit Tracer(unsigned recent_depth = 8)
        : recentDepth(recent_depth)
    {
        // Id 0 is the reserved "no track" / unnamed-component slot.
        compNames.push_back("?");
        trackNames.push_back("-");
        trackOwner.push_back(0);
    }

    Tracer(const Tracer &) = delete;
    Tracer &operator=(const Tracer &) = delete;

    /** Intern a component name; same name returns the same id. */
    std::uint16_t internComponent(const std::string &name);

    /** Intern a sub-track (FIFO, kernel, lane) under a component. */
    std::uint16_t internTrack(std::uint16_t comp, const std::string &name);

    const std::string &componentName(std::uint16_t id) const
    {
        return compNames[id];
    }
    const std::string &trackName(std::uint16_t id) const
    {
        return trackNames[id];
    }
    /** Component a track belongs to. */
    std::uint16_t trackComponent(std::uint16_t track) const
    {
        return trackOwner[track];
    }
    std::size_t numComponents() const { return compNames.size(); }
    std::size_t numTracks() const { return trackNames.size(); }

    /** Register a sink; it must outlive the tracer. */
    void addSink(Sink *s) { sinks.push_back(s); }

    /**
     * Record one event. In direct mode (the default) it fans out to
     * every sink immediately. In ordered mode (see beginOrdered) it is
     * appended to the per-slot staging queue of the current emit slot
     * instead, and reaches the sinks only via flushOrdered(), merged
     * back into the exact (cycle, slot) serial order.
     */
    void
    emit(Cycle cycle, EventKind kind, std::uint8_t arg, std::uint16_t comp,
         std::uint16_t track = 0, std::uint32_t a = 0, std::uint32_t b = 0)
    {
        Event e{cycle, kind, arg, comp, track, a, b};
        if (_ordered) {
            _slotBuf[tlsEmitSlot].push_back(e);
            return;
        }
        deliver(e);
    }

    /**
     * Enter ordered-delivery mode with @p slots staging queues — one
     * per engine component slot. Used by the event and parallel engine
     * schedulers, where components emit out of serial order (lazy
     * replay of slept cycles, concurrent cell ticks): each emission is
     * tagged with the emitting component's slot (setEmitSlot) and
     * buffered; flushOrdered() releases events to the sinks in
     * (cycle, slot, per-slot emission order) — byte-identical to the
     * stream a serial run would have produced. Each staging queue is
     * only ever appended to by one thread at a time (the thread
     * ticking that slot), so no locking is needed.
     */
    void beginOrdered(unsigned slots);

    /**
     * Select the staging queue subsequent emit() calls append to on
     * the calling thread. The engine sets this before every tick()
     * and fastForward() call while ordered mode is active.
     */
    static void setEmitSlot(unsigned slot) { tlsEmitSlot = slot; }

    /**
     * Deliver every staged event with cycle < @p watermark to the
     * sinks, merging the per-slot queues by (cycle, slot). The caller
     * guarantees no future emission can carry a cycle below the
     * watermark (every slot is either live at the current cycle or
     * asleep with its replay resumption point at or above it).
     */
    void flushOrdered(Cycle watermark);

    /** Flush everything still staged and return to direct mode. */
    void endOrdered();

    bool ordered() const { return _ordered; }

    /** Flush sinks; call once when the simulation ends. */
    void finish(Cycle end);

    std::uint64_t eventCount() const { return _eventCount; }

    /**
     * The last few events of every component, formatted one per line —
     * the deadlock watchdog appends this to its abort report so a hang
     * shows what each side was doing when progress stopped.
     */
    std::string recentReport() const;

    /** Human-readable one-line rendering of an event. */
    std::string formatEvent(const Event &e) const;

  private:
    void noteRecent(const Event &e);

    /** Count, ring-buffer and fan out one event (final serial order). */
    void
    deliver(const Event &e)
    {
        ++_eventCount;
        noteRecent(e);
        for (Sink *s : sinks)
            s->event(*this, e);
    }

    std::vector<std::string> compNames;
    std::vector<std::string> trackNames;
    std::vector<std::uint16_t> trackOwner;
    std::vector<Sink *> sinks;
    std::vector<std::deque<Event>> recent; //!< indexed by component id
    unsigned recentDepth;
    std::uint64_t _eventCount = 0;
    bool finished = false;
    bool _ordered = false;
    std::vector<std::deque<Event>> _slotBuf; //!< indexed by emit slot
    static thread_local unsigned tlsEmitSlot;
};

/** A sink that retains every event in memory (tests, small runs). */
class VectorSink : public Sink
{
  public:
    void
    event(const Tracer &, const Event &e) override
    {
        events.push_back(e);
    }

    std::vector<Event> events;
};

} // namespace opac::trace

#endif // OPAC_TRACE_TRACE_HH
