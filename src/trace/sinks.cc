#include "trace/sinks.hh"

#include <cstdlib>
#include <istream>
#include <ostream>

#include "common/logging.hh"
#include "trace/json.hh"

namespace opac::trace
{

namespace
{

// Fixed thread-id layout inside each component's Chrome process.
constexpr unsigned tidSlices = 0;    // kernel-call / bus-descriptor B/E
constexpr unsigned tidIssue = 1;     // instruction-issue instants
constexpr unsigned tidStall = 2;     // stall instants
constexpr unsigned tidWriteback = 3; // retire instants

} // anonymous namespace

ChromeTraceSink::ChromeTraceSink(std::ostream &out) : out(out)
{
    out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
}

void
ChromeTraceSink::emitRecord(const std::string &body)
{
    if (!first)
        out << ",\n";
    first = false;
    out << body;
}

void
ChromeTraceSink::ensureProcessMeta(const Tracer &tracer, std::uint16_t comp)
{
    if (!knownProcs.insert(comp).second)
        return;
    emitRecord(strfmt("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%u,"
                      "\"tid\":0,\"args\":{\"name\":\"%s\"}}",
                      comp,
                      json::escape(tracer.componentName(comp)).c_str()));
}

void
ChromeTraceSink::ensureThreadMeta(const Tracer &tracer, std::uint16_t comp,
                                  unsigned tid, const char *name)
{
    ensureProcessMeta(tracer, comp);
    if (!knownThreads.insert({comp, tid}).second)
        return;
    emitRecord(strfmt("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%u,"
                      "\"tid\":%u,\"args\":{\"name\":\"%s\"}}",
                      comp, tid, name));
}

void
ChromeTraceSink::event(const Tracer &tracer, const Event &e)
{
    auto ts = static_cast<unsigned long long>(e.cycle);
    switch (e.kind) {
      case EventKind::FifoPush:
      case EventKind::FifoPop:
      case EventKind::FifoRecirc:
      case EventKind::FifoReset: {
        // Depth counter track per FIFO. Resets drop to zero.
        ensureProcessMeta(tracer, e.comp);
        std::uint32_t depth =
            e.kind == EventKind::FifoReset ? 0 : e.a;
        emitRecord(strfmt(
            "{\"name\":\"%s depth\",\"ph\":\"C\",\"pid\":%u,\"ts\":%llu,"
            "\"args\":{\"depth\":%u}}",
            json::escape(tracer.trackName(e.track)).c_str(), e.comp, ts,
            depth));
        break;
      }
      case EventKind::Issue:
        ensureThreadMeta(tracer, e.comp, tidIssue, "issue");
        emitRecord(strfmt(
            "{\"name\":\"%s\",\"ph\":\"i\",\"s\":\"t\",\"pid\":%u,"
            "\"tid\":%u,\"ts\":%llu,\"args\":{\"pc\":%u,\"latency\":%u}}",
            opClassName(OpClass(e.arg)), e.comp, tidIssue, ts, e.a, e.b));
        break;
      case EventKind::Retire:
        ensureThreadMeta(tracer, e.comp, tidWriteback, "writeback");
        emitRecord(strfmt(
            "{\"name\":\"retire\",\"ph\":\"i\",\"s\":\"t\",\"pid\":%u,"
            "\"tid\":%u,\"ts\":%llu,\"args\":{\"mask\":%u}}",
            e.comp, tidWriteback, ts, e.a));
        break;
      case EventKind::Stall:
        ensureThreadMeta(tracer, e.comp, tidStall, "stall");
        emitRecord(strfmt(
            "{\"name\":\"%s\",\"ph\":\"i\",\"s\":\"t\",\"pid\":%u,"
            "\"tid\":%u,\"ts\":%llu,\"args\":{\"at\":%u}}",
            stallWhyName(StallWhy(e.arg)), e.comp, tidStall, ts, e.a));
        break;
      case EventKind::BusBegin:
      case EventKind::CallBegin:
        ensureThreadMeta(tracer, e.comp, tidSlices,
                         e.kind == EventKind::BusBegin ? "bus" : "calls");
        emitRecord(strfmt(
            "{\"name\":\"%s\",\"ph\":\"B\",\"pid\":%u,\"tid\":%u,"
            "\"ts\":%llu,\"args\":{\"a\":%u}}",
            json::escape(tracer.trackName(e.track)).c_str(), e.comp,
            tidSlices, ts, e.a));
        break;
      case EventKind::BusEnd:
      case EventKind::CallEnd:
        ensureThreadMeta(tracer, e.comp, tidSlices,
                         e.kind == EventKind::BusEnd ? "bus" : "calls");
        emitRecord(strfmt(
            "{\"name\":\"%s\",\"ph\":\"E\",\"pid\":%u,\"tid\":%u,"
            "\"ts\":%llu}",
            json::escape(tracer.trackName(e.track)).c_str(), e.comp,
            tidSlices, ts));
        break;
      case EventKind::BusWord: {
        ensureProcessMeta(tracer, e.comp);
        std::uint64_t total = ++busWords[e.comp];
        emitRecord(strfmt(
            "{\"name\":\"bus words\",\"ph\":\"C\",\"pid\":%u,\"ts\":%llu,"
            "\"args\":{\"words\":%llu}}",
            e.comp, ts, static_cast<unsigned long long>(total)));
        break;
      }
      case EventKind::Fault:
        ensureThreadMeta(tracer, e.comp, tidStall, "stall");
        emitRecord(strfmt(
            "{\"name\":\"fault\",\"ph\":\"i\",\"s\":\"g\",\"pid\":%u,"
            "\"tid\":%u,\"ts\":%llu,"
            "\"args\":{\"kind\":%u,\"cell\":%u,\"payload\":%u}}",
            e.comp, tidStall, ts, e.arg, e.a, e.b));
        break;
    }
}

void
ChromeTraceSink::finish(const Tracer &tracer, Cycle end)
{
    (void)tracer;
    if (closed)
        return;
    closed = true;
    // A final clock-domain marker so the viewer's time axis spans the
    // whole run even if the last event landed earlier.
    emitRecord(strfmt("{\"name\":\"simulation end\",\"ph\":\"i\","
                      "\"s\":\"g\",\"pid\":0,\"tid\":0,\"ts\":%llu}",
                      static_cast<unsigned long long>(end)));
    out << "\n]}\n";
    out.flush();
}

CsvSink::CsvSink(std::ostream &out) : out(out)
{
    out << "cycle,component,track,kind,arg,a,b\n";
}

void
CsvSink::event(const Tracer &tracer, const Event &e)
{
    out << e.cycle << ',' << tracer.componentName(e.comp) << ','
        << (e.track ? tracer.trackName(e.track) : std::string("-")) << ','
        << eventKindName(e.kind) << ',' << unsigned(e.arg) << ',' << e.a
        << ',' << e.b << '\n';
}

void
CsvSink::finish(const Tracer &tracer, Cycle end)
{
    (void)tracer;
    (void)end;
    out.flush();
}

bool
readCsv(std::istream &in, Tracer &tracer, std::string *err)
{
    auto fail = [&](std::size_t lineno, const std::string &what) {
        if (err)
            *err = strfmt("csv line %zu: %s", lineno, what.c_str());
        return false;
    };

    static const EventKind allKinds[] = {
        EventKind::FifoPush, EventKind::FifoPop, EventKind::FifoRecirc,
        EventKind::FifoReset, EventKind::Issue, EventKind::Retire,
        EventKind::Stall, EventKind::BusBegin, EventKind::BusWord,
        EventKind::BusEnd, EventKind::CallBegin, EventKind::CallEnd,
        EventKind::Fault,
    };

    std::string line;
    std::size_t lineno = 0;
    Cycle last = 0;
    while (std::getline(in, line)) {
        ++lineno;
        if (line.empty())
            continue;
        if (lineno == 1 && line.rfind("cycle,", 0) == 0)
            continue; // header
        std::vector<std::string> cells;
        std::size_t start = 0;
        while (true) {
            std::size_t comma = line.find(',', start);
            if (comma == std::string::npos) {
                cells.push_back(line.substr(start));
                break;
            }
            cells.push_back(line.substr(start, comma - start));
            start = comma + 1;
        }
        if (cells.size() != 7)
            return fail(lineno, strfmt("expected 7 fields, got %zu",
                                       cells.size()));
        Cycle cycle = std::strtoull(cells[0].c_str(), nullptr, 10);
        const EventKind *kind = nullptr;
        for (const EventKind &k : allKinds) {
            if (cells[3] == eventKindName(k)) {
                kind = &k;
                break;
            }
        }
        if (!kind)
            return fail(lineno, "unknown event kind '" + cells[3] + "'");
        std::uint16_t comp = tracer.internComponent(cells[1]);
        std::uint16_t track =
            cells[2] == "-" ? 0 : tracer.internTrack(comp, cells[2]);
        tracer.emit(cycle, *kind,
                    std::uint8_t(std::strtoul(cells[4].c_str(), nullptr,
                                              10)),
                    comp, track,
                    std::uint32_t(std::strtoul(cells[5].c_str(), nullptr,
                                               10)),
                    std::uint32_t(std::strtoul(cells[6].c_str(), nullptr,
                                               10)));
        last = cycle;
    }
    tracer.finish(last + 1);
    return true;
}

} // namespace opac::trace
