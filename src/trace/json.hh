/**
 * @file
 * Minimal JSON document model and recursive-descent parser.
 *
 * Exists so the test suite can parse a Chrome trace file back and
 * assert its structure, and so tools/trace_report can summarize one,
 * without adding an external dependency. Handles the full JSON grammar
 * (objects, arrays, strings with escapes, numbers, booleans, null);
 * not tuned for large documents.
 */

#ifndef OPAC_TRACE_JSON_HH
#define OPAC_TRACE_JSON_HH

#include <string>
#include <utility>
#include <vector>

namespace opac::trace::json
{

/** A parsed JSON value (tagged union over a recursive document). */
struct Value
{
    enum class Type
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Type type = Type::Null;
    bool boolean = false;
    double number = 0.0;
    std::string str;
    std::vector<Value> array;
    std::vector<std::pair<std::string, Value>> object;

    bool isNull() const { return type == Type::Null; }
    bool isObject() const { return type == Type::Object; }
    bool isArray() const { return type == Type::Array; }
    bool isString() const { return type == Type::String; }
    bool isNumber() const { return type == Type::Number; }

    /** Object member lookup; null when absent or not an object. */
    const Value *find(const std::string &key) const;
};

/**
 * Parse @p text into @p out. Returns false (with a position-annotated
 * message in @p err, if given) on any syntax error or trailing junk.
 */
bool parse(const std::string &text, Value &out, std::string *err = nullptr);

/** Escape a string for embedding in JSON output (no quotes added). */
std::string escape(const std::string &s);

} // namespace opac::trace::json

#endif // OPAC_TRACE_JSON_HH
