#include "cell/cell.hh"

#include <algorithm>

#include "common/error.hh"
#include "common/logging.hh"
#include "isa/disasm.hh"
#include "isa/encode.hh"
#include "sim/replay.hh"
#include "snap/snapshot.hh"

namespace opac::cell
{

using isa::Src;
using isa::Opcode;

Cell::Cell(std::string name, const CellConfig &cfg,
           stats::StatGroup *parent_stats)
    : sim::Component(name),
      cfg(cfg),
      fpu(makeFpUnit(cfg.fp)),
      _tpx("tpx", cfg.interfaceDepth, cfg.fifoLatency),
      _tpy("tpy", cfg.interfaceDepth, cfg.fifoLatency),
      _tpo("tpo", cfg.interfaceDepth, cfg.fifoLatency),
      _tpi("tpi", cfg.tpiDepth, cfg.fifoLatency),
      _sum("sum", cfg.tf, cfg.fifoLatency),
      _ret("ret", cfg.tf, cfg.fifoLatency),
      _reby("reby", cfg.tf, cfg.fifoLatency),
      statGroup(name, parent_stats),
      ftGroup(name + ".fastTier")
{
    // Order matches isa::CellQueue (the decoded-operand queue ids).
    queueTab = {&_sum, &_ret, &_reby, &_tpo, &_tpx, &_tpy};
    statGroup.addCounter("issued", &statIssued, "micro-ops issued");
    statGroup.addCounter("fma", &statFma, "chained multiply-adds");
    statGroup.addCounter("mulOnly", &statMulOnly, "multiplies");
    statGroup.addCounter("addOnly", &statAddOnly, "additions");
    statGroup.addCounter("moves", &statMoves, "move-path transfers");
    statGroup.addCounter("busyCycles", &statBusy, "cycles not idle");
    statGroup.addCounter("idleCycles", &statIdle, "cycles waiting for "
                         "calls");
    statGroup.addCounter("stallSrcEmpty", &statStallSrc,
                         "issue stalls: source queue empty");
    statGroup.addCounter("stallDstFull", &statStallDst,
                         "issue stalls: destination queue full");
    statGroup.addCounter("stallRegPending", &statStallReg,
                         "issue stalls: register write in flight");
    statGroup.addCounter("calls", &statCalls, "kernel calls executed");
    statGroup.addCounter("writePortConflicts", &statWritePortConflicts,
                         "same-cycle writebacks to one queue");
    statGroup.addCounter("hangCycles", &statHangCycles,
                         "cycles frozen by a hang or fault");
    statGroup.addCounter("faults", &statFaults,
                         "times the cell entered the faulted state");
    statGroup.addCounter("hardResets", &statHardResets,
                         "reset-line pulses received");
    // Fast-tier diagnostics live in a detached group: the stats JSON
    // under statGroup must stay byte-identical with the tier on or
    // off, and burst engagement depends on the engine mode.
    ftGroup.addCounter("compiled", &statFtCompiled,
                       "loop bodies analyzed burst-eligible");
    ftGroup.addCounter("ineligible", &statFtIneligible,
                       "loop bodies analyzed and rejected");
    ftGroup.addCounter("bursts", &statFtBursts,
                       "burst windows executed");
    ftGroup.addCounter("burstCycles", &statFtBurstCycles,
                       "cycles executed inside bursts");
    ftGroup.addCounter("burstIssued", &statFtBurstIssued,
                       "micro-ops issued inside bursts");
    ftGroup.addCounter("burstIters", &statFtBurstIters,
                       "loop iterations completed inside bursts");
    ftGroup.addCounter("turboCycles", &statFtTurboCycles,
                       "burst cycles run by the specialized executor");
    ftGroup.addCounter("fallbackObserver", &statFtFallbackObserver,
                       "burst refused: per-cycle observer attached");
    ftGroup.addCounter("fallbackBody", &statFtFallbackBody,
                       "burst refused: body not burst-eligible");
    ftGroup.addCounter("fallbackInflight", &statFtFallbackInflight,
                       "burst refused: interface write in flight");
    _tpx.addStats(statGroup);
    _tpy.addStats(statGroup);
    _tpo.addStats(statGroup);
    _tpi.addStats(statGroup);
    _sum.addStats(statGroup);
    _ret.addStats(statGroup);
    _reby.addStats(statGroup);
    fpu->registerStats(statGroup);

    // Word protection: an unrepairable error on any queue this cell
    // consumes freezes it (the host notices via its call timeout).
    // tpo is consumed by the host, which installs its own handler.
    for (TimedFifo *q : {&_tpx, &_tpy, &_tpi, &_sum, &_ret, &_reby}) {
        q->setParity(cfg.parity);
        q->setProtectionHandler(
            [this, q](Cycle now) { enterFaulted(q->name().c_str(), now); });
    }
    _tpo.setParity(cfg.parity);

    // Every queue mutation must wake this cell before it happens so
    // the event engine can replay slept-through rounds against the
    // pre-mutation state. setBusWakeNeighbor() later adds the host on
    // the four interface queues.
    for (TimedFifo *q : queueTab)
        q->setWakeTargets(this, nullptr);
    _tpi.setWakeTargets(this, nullptr);
}

std::uint64_t
Cell::pmuRead(PmuReg reg) const
{
    switch (reg) {
      case PmuReg::Issued:
        return statIssued.value();
      case PmuReg::Fma:
        return statFma.value();
      case PmuReg::MulOnly:
        return statMulOnly.value();
      case PmuReg::AddOnly:
        return statAddOnly.value();
      case PmuReg::Moves:
        return statMoves.value();
      case PmuReg::BusyCycles:
        return statBusy.value();
      case PmuReg::IdleCycles:
        return statIdle.value();
      case PmuReg::StallSrcEmpty:
        return statStallSrc.value();
      case PmuReg::StallDstFull:
        return statStallDst.value();
      case PmuReg::StallRegPending:
        return statStallReg.value();
      case PmuReg::Calls:
        return statCalls.value();
      case PmuReg::HighWaterTpx:
        return _tpx.highWater();
      case PmuReg::HighWaterTpy:
        return _tpy.highWater();
      case PmuReg::HighWaterTpo:
        return _tpo.highWater();
      case PmuReg::HighWaterTpi:
        return _tpi.highWater();
      case PmuReg::HighWaterSum:
        return _sum.highWater();
      case PmuReg::HighWaterRet:
        return _ret.highWater();
      case PmuReg::HighWaterReby:
        return _reby.highWater();
      case PmuReg::NumRegs:
        break;
    }
    opac_warn_once("%s: PMU read of unknown register %u reads as zero",
                   name().c_str(), unsigned(reg));
    return 0;
}

void
Cell::setTraceHook(std::function<void(const std::string &)> hook)
{
    traceHook = std::move(hook);
}

void
Cell::attachTracer(trace::Tracer *t)
{
    tracer = t;
    traceComp = t ? t->internComponent(name()) : 0;
    _tpx.attachTracer(t, traceComp);
    _tpy.attachTracer(t, traceComp);
    _tpo.attachTracer(t, traceComp);
    _tpi.attachTracer(t, traceComp);
    _sum.attachTracer(t, traceComp);
    _ret.attachTracer(t, traceComp);
    _reby.attachTracer(t, traceComp);
    // Pre-intern every kernel's name track so dispatch-time lookups
    // never append to the track table: track ids stay independent of
    // runtime call order (identical across engine modes) and the scan
    // is read-only under the parallel engine.
    if (t) {
        for (const auto &[entry, k] : microcode)
            t->internTrack(traceComp, k.prog.name());
    }
}

void
Cell::loadMicrocode(Word entry, isa::Program prog, unsigned nparams)
{
    prog.validate();
    prog.decode();
    if (nparams > isa::numParams)
        throw MicrocodeError(prog.name(),
                             strfmt("%u parameters exceed %u registers",
                                    nparams, isa::numParams));
    if (entry == pmuCallEntry || entry == resetCallEntry)
        throw MicrocodeError(prog.name(),
                             strfmt("entry id %#x collides with a "
                                    "reserved call",
                                    entry));
    Kernel &k = microcode[entry];
    k = Kernel{std::move(prog), nparams};
    // Reloading an entry reuses the map node, so cached body analyses
    // keyed on the Kernel address would go stale: drop them all.
    fastBodies.clear();
    burstBody = nullptr;
    if (tracer)
        tracer->internTrack(traceComp, k.prog.name());
}

TimedFifo *
Cell::queueFor(Src s)
{
    switch (s) {
      case Src::TpX:
        return &_tpx;
      case Src::TpY:
        return &_tpy;
      case Src::Sum:
      case Src::SumR:
        return &_sum;
      case Src::Ret:
      case Src::RetR:
        return &_ret;
      case Src::Reby:
      case Src::RebyR:
        return &_reby;
      default:
        return nullptr;
    }
}

namespace
{

bool
isRecirc(Src s)
{
    return s == Src::SumR || s == Src::RetR || s == Src::RebyR;
}

} // anonymous namespace

StallCause
Cell::checkHazards(const isa::DecodedInstr &d, Cycle now) const
{
    // The read list preserves operand order (mulA, mulB, addA, addB,
    // mvSrc), so the first failing check — and with it the reported
    // stall cause — is the same as the un-decoded per-operand scan.
    for (unsigned i = 0; i < d.numReads; ++i) {
        const isa::DecodedRead &r = d.reads[i];
        switch (r.kind) {
          case isa::DecodedRead::Kind::Queue:
            if (!queueTab[r.queue]->canPop(now))
                return StallCause::SrcEmpty;
            break;
          case isa::DecodedRead::Kind::RegAy:
            if (regAyPending)
                return StallCause::RegPending;
            break;
          case isa::DecodedRead::Kind::Reg:
            if (regPending[r.reg])
                return StallCause::RegPending;
            break;
        }
    }

    // WAW interlock: a register with an in-flight write cannot be
    // written again until it lands.
    if (d.wawAy && regAyPending)
        return StallCause::RegPending;
    for (unsigned i = 0; i < d.numWawRegs; ++i) {
        if (regPending[d.wawRegs[i]])
            return StallCause::RegPending;
    }

    // Net space requirement per queue (pushes minus pops, precomputed).
    for (unsigned i = 0; i < d.numNeeds; ++i) {
        const auto &n = d.needs[i];
        if (queueTab[n.queue]->space() < std::size_t(n.amount))
            return StallCause::DstFull;
    }
    return StallCause::None;
}

Word
Cell::readOperand(const isa::Operand &op, Cycle now, Word mul_out)
{
    switch (op.kind) {
      case Src::None:
        opac_panic("reading unused operand");
      case Src::MulOut:
        return mul_out;
      case Src::RegAy:
        return regAy;
      case Src::Reg:
        return regs[op.idx];
      case Src::Zero:
        return 0;
      case Src::One:
        return floatToWord(1.0f);
      default: {
        TimedFifo *q = queueFor(op.kind);
        if (isRecirc(op.kind))
            return q->recirculate(now);
        return q->pop(now);
      }
    }
}

void
Cell::scheduleWrite(Cycle when, Word value, std::uint8_t mask,
                    std::uint8_t dst_reg, Cycle now)
{
    if (mask == 0)
        return;
    // Reserve queue slots now so the writeback cannot overflow.
    if (mask & isa::DstSum)
        _sum.reserve();
    if (mask & isa::DstRet)
        _ret.reserve();
    if (mask & isa::DstReby)
        _reby.reserve();
    if (mask & isa::DstTpO)
        _tpo.reserve();
    if (mask & isa::DstRegAy)
        regAyPending = true;
    if (mask & isa::DstReg)
        regPending[dst_reg] = true;
    (void)now;
    wbReadyAt = std::min(wbReadyAt, when);
    inflight.push_back(InFlight{when, value, mask, dst_reg});
}

void
Cell::issueCompute(const isa::Instr &in, const isa::DecodedInstr &d,
                   Cycle now)
{
    bool mul_active = d.mulActive;
    bool add_active = d.addActive;

    Word mul_out = 0;
    unsigned fp_latency = 0;
    if (mul_active) {
        Word a = readOperand(in.mulA, now, 0);
        Word b = readOperand(in.mulB, now, 0);
        mul_out = fpu->mul(a, b);
        fp_latency += cfg.mulLatency;
    }
    Word fp_result = mul_out;
    if (add_active) {
        Word a = d.addAFromMul ? mul_out : readOperand(in.addA, now, 0);
        Word b = readOperand(in.addB, now, 0);
        fp_result = fpu->add(a, b, in.addOp);
        fp_latency += cfg.addLatency;
    }
    if (mul_active || add_active)
        scheduleWrite(now + fp_latency, fp_result, in.dstMask, in.dstReg,
                      now);

    if (d.mvActive) {
        Word v = readOperand(in.mvSrc, now, mul_out);
        scheduleWrite(now + cfg.moveLatency, v, in.mvDstMask, in.mvDstReg,
                      now);
        ++statMoves;
    }

    if (mul_active && add_active)
        ++statFma;
    else if (mul_active)
        ++statMulOnly;
    else if (add_active)
        ++statAddOnly;
    ++statIssued;

    if (tracer) {
        trace::OpClass cls = trace::OpClass::Move;
        unsigned latency = cfg.moveLatency;
        if (mul_active && add_active) {
            cls = trace::OpClass::Fma;
            latency = fp_latency;
        } else if (mul_active) {
            cls = trace::OpClass::Mul;
            latency = fp_latency;
        } else if (add_active) {
            cls = trace::OpClass::Add;
            latency = fp_latency;
        }
        tracer->emit(now, trace::EventKind::Issue, std::uint8_t(cls),
                     traceComp, 0, std::uint32_t(pc), latency);
    }
}

void
Cell::drainWritebacks(Cycle now, sim::Engine &engine)
{
    // Writebacks commit in issue order per destination: a short-latency
    // move issued after a long-latency FP op must not overtake it into
    // the same queue (the queues have one in-order write port). An
    // entry that cannot commit blocks its destinations for every later
    // entry; entries commit atomically.
    if (now < wbReadyAt)
        return;
    bool pushed[4] = {false, false, false, false};
    bool blocked[4] = {false, false, false, false};
    bool reg_blocked = false;
    auto blockedFor = [&](const InFlight &w) {
        if ((w.dstMask & isa::DstSum) && blocked[0])
            return true;
        if ((w.dstMask & isa::DstRet) && blocked[1])
            return true;
        if ((w.dstMask & isa::DstReby) && blocked[2])
            return true;
        if ((w.dstMask & isa::DstTpO) && blocked[3])
            return true;
        if ((w.dstMask & (isa::DstRegAy | isa::DstReg)) && reg_blocked)
            return true;
        return false;
    };
    auto blockFor = [&](const InFlight &w) {
        if (w.dstMask & isa::DstSum)
            blocked[0] = true;
        if (w.dstMask & isa::DstRet)
            blocked[1] = true;
        if (w.dstMask & isa::DstReby)
            blocked[2] = true;
        if (w.dstMask & isa::DstTpO)
            blocked[3] = true;
        if (w.dstMask & (isa::DstRegAy | isa::DstReg))
            reg_blocked = true;
    };
    for (std::size_t i = 0; i < inflight.size();) {
        InFlight &w = inflight[i];
        if (w.when > now || blockedFor(w)) {
            blockFor(w);
            ++i;
            continue;
        }
        auto push = [&](TimedFifo &q, int pi) {
            if (pushed[pi]) {
                ++statWritePortConflicts;
                opac_warn_once("%s: two writebacks into '%s' in one "
                               "cycle (single write port modelled as "
                               "free)", name().c_str(),
                               q.name().c_str());
            }
            pushed[pi] = true;
            q.pushReserved(w.value, now);
        };
        if (w.dstMask & isa::DstSum)
            push(_sum, 0);
        if (w.dstMask & isa::DstRet)
            push(_ret, 1);
        if (w.dstMask & isa::DstReby)
            push(_reby, 2);
        if (w.dstMask & isa::DstTpO)
            push(_tpo, 3);
        if (w.dstMask & isa::DstRegAy) {
            regAy = w.value;
            regAyPending = false;
        }
        if (w.dstMask & isa::DstReg) {
            regs[w.dstReg] = w.value;
            regPending[w.dstReg] = false;
        }
        if (tracer) {
            tracer->emit(now, trace::EventKind::Retire, 0, traceComp, 0,
                         w.dstMask, w.value);
        }
        engine.noteProgress();
        inflight.erase(inflight.begin() + std::ptrdiff_t(i));
    }
    // Entries left blocked behind a later `when` retry next cycle at
    // the earliest; otherwise nothing can land before the minimum
    // remaining `when`.
    Cycle m = sim::Component::noEvent;
    for (const InFlight &w : inflight)
        m = std::min(m, w.when);
    wbReadyAt = std::max(m, now + 1);
}

/** Count one stalled issue cycle and emit its trace event. */
void
Cell::emitStall(StallCause cause, Cycle now)
{
    trace::StallWhy why = trace::StallWhy::SrcEmpty;
    switch (cause) {
      case StallCause::None:
        opac_panic("emitStall without a stall");
      case StallCause::SrcEmpty:
        ++statStallSrc;
        why = trace::StallWhy::SrcEmpty;
        break;
      case StallCause::DstFull:
        ++statStallDst;
        why = trace::StallWhy::DstFull;
        break;
      case StallCause::RegPending:
        ++statStallReg;
        why = trace::StallWhy::RegPending;
        break;
    }
    if (tracer) {
        tracer->emit(now, trace::EventKind::Stall, std::uint8_t(why),
                     traceComp, 0, std::uint32_t(pc), 0);
    }
}

/**
 * Execute zero-cost control flow at the current pc: hardware loop
 * begin/end. Returns false when the lookahead budget is exhausted
 * without reaching an issueable instruction.
 */
bool
Cell::stepControl(Cycle now)
{
    (void)now;
    unsigned budget = cfg.controlOpsPerCycle;
    while (budget-- > 0) {
        opac_assert(pc < current->prog.size(), "pc out of range in '%s'",
                    current->prog.name().c_str());
        const isa::Instr &in = current->prog.at(pc);
        switch (in.op) {
          case Opcode::LoopBegin: {
            std::uint32_t count = in.countIsParam
                ? std::uint32_t(std::max<std::int32_t>(
                      0, params[in.countParam]))
                : in.count;
            if (count == 0) {
                // Skip the body: scan for the matching LoopEnd.
                unsigned depth = 1;
                std::size_t scan = pc + 1;
                while (depth > 0) {
                    const isa::Instr &s = current->prog.at(scan);
                    if (s.op == Opcode::LoopBegin)
                        ++depth;
                    else if (s.op == Opcode::LoopEnd)
                        --depth;
                    ++scan;
                }
                pc = scan;
            } else {
                loopStack.push_back(LoopFrame{pc + 1, count - 1});
                ++pc;
            }
            break;
          }
          case Opcode::LoopEnd: {
            opac_assert(!loopStack.empty(), "LoopEnd with empty stack");
            LoopFrame &f = loopStack.back();
            if (f.remaining > 0) {
                --f.remaining;
                pc = f.bodyPc;
            } else {
                loopStack.pop_back();
                ++pc;
            }
            break;
          }
          default:
            return true; // an issueable instruction
        }
    }
    return false; // lookahead bound hit; retry next cycle
}

void
Cell::tickSequencer(Cycle now, sim::Engine &engine)
{
    switch (state) {
      case SeqState::Idle:
        if (_tpi.canPop(now)) {
            Word entry = _tpi.pop(now);
            if (entry == pmuCallEntry) {
                // PMU status call: one parameter word selects the
                // register; the readback is not a kernel call and
                // leaves the kernel counters untouched.
                pmuCall = true;
                paramsToRead = 1;
                paramIndex = 0;
                state = SeqState::ReadParams;
                engine.noteProgress();
                break;
            }
            auto it = microcode.find(entry);
            if (it == microcode.end()) {
                // A corrupted or junk call word must not kill the
                // simulation: the sequencer jams and the host-side
                // timeout (or the watchdog) deals with it.
                opac_warn_once("%s: call to unknown microcode entry %u"
                               " (cell faulted)",
                               name().c_str(), entry);
                enterFaulted("unknown call entry", now);
                engine.noteProgress(); // the pop was progress
                break;
            }
            current = &it->second;
            paramsToRead = current->nparams;
            paramIndex = 0;
            state = paramsToRead > 0 ? SeqState::ReadParams
                                     : SeqState::Decode;
            decodeLeft = cfg.callDecodeCycles;
            ++statCalls;
            ++statBusy;
            if (traceHook) {
                traceHook(strfmt("%llu call %s",
                                 (unsigned long long)now,
                                 current->prog.name().c_str()));
            }
            if (tracer) {
                callTrack = tracer->internTrack(traceComp,
                                                current->prog.name());
                tracer->emit(now, trace::EventKind::CallBegin, 0,
                             traceComp, callTrack, entry, 0);
            }
            engine.noteProgress();
        } else {
            ++statIdle;
        }
        break;

      case SeqState::ReadParams:
        ++statBusy;
        if (_tpi.canPop(now)) {
            params[paramIndex++] = std::int32_t(_tpi.pop(now));
            if (--paramsToRead == 0)
                state = pmuCall ? SeqState::PmuRespond : SeqState::Decode;
            engine.noteProgress();
        }
        break;

      case SeqState::PmuRespond: {
        ++statBusy;
        if (_tpo.space() >= 2) {
            std::uint64_t v = pmuRead(PmuReg(std::uint32_t(params[0])));
            _tpo.push(Word(v), now);
            _tpo.push(Word(v >> 32), now);
            pmuCall = false;
            state = SeqState::Idle;
            engine.noteProgress();
        } else {
            ++statStallDst;
        }
        break;
      }

      case SeqState::Decode:
        // A pure countdown is not forward progress: it is fully
        // predictable (see nextEventAt), so the engine may skip it.
        // Completing the dispatch is.
        ++statBusy;
        if (decodeLeft > 1) {
            --decodeLeft;
        } else {
            pc = 0;
            loopStack.clear();
            state = SeqState::Run;
            engine.noteProgress();
        }
        break;

      case SeqState::Run: {
        ++statBusy;
        if (!stepControl(now)) {
            engine.noteProgress(); // control scan is progress
            break;
        }
        const isa::Instr &in = current->prog.at(pc);
        switch (in.op) {
          case Opcode::Compute: {
            StallCause stall =
                checkHazards(current->prog.decodedAt(pc), now);
            if (stall == StallCause::None) {
                issueCompute(in, current->prog.decodedAt(pc), now);
                if (traceHook) {
                    traceHook(strfmt("%llu [%zu] %s",
                                     (unsigned long long)now, pc,
                                     isa::disasm(in).c_str()));
                }
                ++pc;
                engine.noteProgress();
            } else {
                emitStall(stall, now);
            }
            break;
          }
          case Opcode::SetParam: {
            std::int32_t &d = params[in.dstParam];
            switch (in.paramOp) {
              case isa::ParamOp::LoadImm:
                d = in.imm;
                break;
              case isa::ParamOp::Copy:
                d = params[in.srcParam];
                break;
              case isa::ParamOp::Inc:
                ++d;
                break;
              case isa::ParamOp::Dec:
                --d;
                break;
              case isa::ParamOp::Mul2:
                d *= 2;
                break;
              case isa::ParamOp::Div2:
                d /= 2;
                break;
              case isa::ParamOp::AddImm:
                d += in.imm;
                break;
            }
            ++pc;
            ++statIssued;
            if (tracer) {
                tracer->emit(now, trace::EventKind::Issue,
                             std::uint8_t(trace::OpClass::Control),
                             traceComp, 0, std::uint32_t(pc - 1), 0);
            }
            engine.noteProgress();
            break;
          }
          case Opcode::ResetFifo: {
            // A reset must let in-flight writebacks to the queue land
            // first, or their reserved slots would be destroyed.
            std::uint8_t bit = in.fifo == isa::LocalFifo::Sum
                ? isa::DstSum
                : in.fifo == isa::LocalFifo::Ret ? isa::DstRet
                                                 : isa::DstReby;
            bool write_in_flight = false;
            for (const auto &w : inflight) {
                if (w.dstMask & bit) {
                    write_in_flight = true;
                    break;
                }
            }
            if (write_in_flight) {
                emitStall(StallCause::DstFull, now);
                break;
            }
            switch (in.fifo) {
              case isa::LocalFifo::Sum:
                _sum.reset(now);
                break;
              case isa::LocalFifo::Ret:
                _ret.reset(now);
                break;
              case isa::LocalFifo::Reby:
                _reby.reset(now);
                break;
            }
            ++pc;
            ++statIssued;
            if (tracer) {
                tracer->emit(now, trace::EventKind::Issue,
                             std::uint8_t(trace::OpClass::Control),
                             traceComp, 0, std::uint32_t(pc - 1), 0);
            }
            engine.noteProgress();
            break;
          }
          case Opcode::Halt:
            if (traceHook) {
                traceHook(strfmt("%llu halt",
                                 (unsigned long long)now));
            }
            if (tracer) {
                tracer->emit(now, trace::EventKind::CallEnd, 0,
                             traceComp, callTrack, 0, 0);
            }
            state = SeqState::Idle;
            current = nullptr;
            engine.noteProgress();
            break;
          default:
            opac_panic("control op leaked to issue stage");
        }
        break;
      }
    }
}

void
Cell::tick(sim::Engine &engine)
{
    if (_dead)
        return;
    Cycle now = engine.now();
    if (_faulted || now < hangUntil) {
        // Frozen: sequencer and writeback stand still, the queues keep
        // accepting pushes from the host. Occupancy sampling continues
        // so a faulted run's stats stay comparable.
        ++statHangCycles;
        _sum.sampleOccupancy();
        _ret.sampleOccupancy();
        _reby.sampleOccupancy();
        return;
    }
    drainWritebacks(now, engine);
    tickSequencer(now, engine);
    _sum.sampleOccupancy();
    _ret.sampleOccupancy();
    _reby.sampleOccupancy();
}

Cycle
Cell::nextEventAt(Cycle now) const
{
    if (_dead)
        return noEvent;
    sim::HintMin at;
    // Any queue front falling through can unblock the sequencer or
    // the host (tpo feeds the host's Recv), so all seven count.
    for (const TimedFifo *q : queueTab)
        at.note(q->nextReadyAt(now));
    at.note(_tpi.nextReadyAt(now));
    // A faulted cell acts on nothing itself; only its queue fronts
    // matter (the host may still drain tpo). A hung cell additionally
    // wakes when the hang expires; its internal countdowns stay
    // frozen until then.
    if (_faulted)
        return at.value();
    if (now < hangUntil) {
        at.note(hangUntil);
        return at.value();
    }
    // At exact hang expiry the freeze lifts this very cycle: the
    // sequencer resumes whatever it was doing (a control op, a stale
    // but still poppable queue front, a landable writeback) with no
    // queue event to announce it. Report `now`; an early wake is
    // always safe — a genuinely stalled cell re-sleeps on a fresh
    // hint computed past the hang.
    if (hangUntil != 0 && now == hangUntil)
        return now;
    // Pipeline results landing unblock RegPending/ResetFifo stalls and
    // writeback-ordering blocks. when == now counts (it lands in the
    // round at `now`); entries with when < now that did not commit
    // are ordered behind one with when >= now, which covers them.
    for (const auto &w : inflight)
        at.noteFuture(w.when, now);
    if (state == SeqState::Decode)
        at.note(now + decodeLeft - 1);
    return at.value();
}

void
Cell::fastForward(Cycle from, Cycle cycles, sim::Engine &engine)
{
    (void)engine;
    if (cycles == 0)
        return;
    if (_dead)
        return;
    if (_faulted || from < hangUntil) {
        // The skip window cannot cross hangUntil (nextEventAt reports
        // it), so every replayed round is a frozen one.
        statHangCycles += cycles;
        _sum.sampleOccupancy(cycles);
        _ret.sampleOccupancy(cycles);
        _reby.sampleOccupancy(cycles);
        return;
    }
    // Replay what tick() did in the quiescent round being replicated:
    // the sequencer's per-state busy/stall accounting (no drainable
    // writebacks and no state change by construction of the skip
    // window), then the per-cycle occupancy samples.
    switch (state) {
      case SeqState::Idle:
        statIdle += cycles;
        break;
      case SeqState::ReadParams:
        statBusy += cycles;
        break;
      case SeqState::PmuRespond:
        statBusy += cycles;
        statStallDst += cycles;
        break;
      case SeqState::Decode:
        // The skip window never reaches the dispatch cycle.
        statBusy += cycles;
        decodeLeft -= unsigned(cycles);
        break;
      case SeqState::Run: {
        statBusy += cycles;
        const isa::Instr &in = current->prog.at(pc);
        StallCause stall;
        if (in.op == Opcode::Compute) {
            stall = checkHazards(current->prog.decodedAt(pc), from);
        } else {
            // Only a blocked ResetFifo can stall in Run state; every
            // other non-Compute op always completes (= progress).
            opac_assert(in.op == Opcode::ResetFifo,
                        "%s: quiescent Run state at a non-stallable op "
                        "(op=%u pc=%zu from=%llu cycles=%llu hang=%llu "
                        "faulted=%d inflight=%zu tpi=%zu)",
                        name().c_str(), unsigned(in.op), pc,
                        (unsigned long long)from,
                        (unsigned long long)cycles,
                        (unsigned long long)hangUntil, int(_faulted),
                        inflight.size(), _tpi.size());
            stall = StallCause::DstFull;
        }
        trace::StallWhy why = trace::StallWhy::SrcEmpty;
        switch (stall) {
          case StallCause::None:
            opac_panic("%s: quiescent Run state with no hazard",
                       name().c_str());
          case StallCause::SrcEmpty:
            statStallSrc += cycles;
            why = trace::StallWhy::SrcEmpty;
            break;
          case StallCause::DstFull:
            statStallDst += cycles;
            why = trace::StallWhy::DstFull;
            break;
          case StallCause::RegPending:
            statStallReg += cycles;
            why = trace::StallWhy::RegPending;
            break;
        }
        sim::replayStalls(tracer, from, cycles, why, traceComp,
                          std::uint32_t(pc));
        break;
      }
    }
    _sum.sampleOccupancy(cycles);
    _ret.sampleOccupancy(cycles);
    _reby.sampleOccupancy(cycles);
}

bool
Cell::done() const
{
    if (_dead)
        return true;
    if (_faulted)
        return false; // stuck: recovery resets us or the watchdog fires
    return state == SeqState::Idle && _tpi.empty() && inflight.empty();
}

void
Cell::hardReset(Cycle now)
{
    // External mutation entry point (the host's recovery path pulls
    // the reset line): wake before touching anything so a sleeping
    // cell replays against its pre-reset state.
    wakeForMutation();
    for (TimedFifo *q : queueTab)
        q->reset(now);
    _tpi.reset(now);
    state = SeqState::Idle;
    current = nullptr;
    pc = 0;
    paramsToRead = 0;
    paramIndex = 0;
    decodeLeft = 0;
    pmuCall = false;
    loopStack.clear();
    inflight.clear();
    wbReadyAt = noEvent;
    regPending = {};
    regAyPending = false;
    _faulted = false;
    hangUntil = 0;
    faultWhy.clear();
    if (_broken) {
        // A hard (permanent) fault re-asserts itself the moment the
        // reset line is released: only markDead() silences it.
        _faulted = true;
        faultWhy = "hard fault";
    }
    ++statHardResets;
    if (traceHook)
        traceHook(strfmt("%llu hard-reset", (unsigned long long)now));
}

void
Cell::markDead(Cycle now)
{
    wakeForMutation();
    hardReset(now);
    _dead = true;
    opac_warn_once("%s: marked dead at cycle %llu", name().c_str(),
                   (unsigned long long)now);
}

void
Cell::injectHang(Cycle now, Cycle duration)
{
    wakeForMutation();
    if (_dead)
        return;
    if (duration == 0) {
        _broken = true;
        enterFaulted("injected permanent hang", now);
        return;
    }
    hangUntil = std::max(hangUntil, now + duration);
}

void
Cell::injectSpuriousHalt(Cycle now)
{
    wakeForMutation();
    if (_dead || _faulted || state == SeqState::Idle)
        return;
    // The sequencer drops everything mid-kernel. Unconsumed parameter
    // or data words stay in the queues and will desynchronize the
    // next call — exactly the cascade a real control-logic upset
    // causes. In-flight pipeline results still land.
    if (tracer && state == SeqState::Run)
        tracer->emit(now, trace::EventKind::CallEnd, 0, traceComp,
                     callTrack, 0, 0);
    if (traceHook)
        traceHook(strfmt("%llu spurious-halt", (unsigned long long)now));
    state = SeqState::Idle;
    current = nullptr;
    paramsToRead = 0;
    pmuCall = false;
    loopStack.clear();
}

void
Cell::enterFaulted(const char *why, Cycle now)
{
    wakeForMutation();
    if (_dead || _faulted)
        return;
    _faulted = true;
    faultWhy = why;
    ++statFaults;
    if (traceHook)
        traceHook(strfmt("%llu faulted (%s)", (unsigned long long)now,
                         why));
}

void
Cell::saveState(snap::Writer &w) const
{
    static_assert(isa::numRegs <= 64, "regPending saved as a u64 mask");
    // The complete microcode store, as encoded images: kernels can be
    // installed at runtime, so the snapshot cannot assume the fresh
    // machine it restores into has the same store. std::map iterates
    // in entry-id order — stable across install order.
    w.u32(std::uint32_t(microcode.size()));
    for (const auto &[entry, k] : microcode) {
        w.u32(entry);
        w.u32(k.nparams);
        w.str(k.prog.name());
        std::vector<std::uint32_t> image = isa::encode(k.prog);
        w.u32(std::uint32_t(image.size()));
        for (std::uint32_t word : image)
            w.u32(word);
    }
    for (Word v : regs)
        w.u32(v);
    std::uint64_t pend = 0;
    for (unsigned i = 0; i < isa::numRegs; ++i) {
        if (regPending[i])
            pend |= std::uint64_t(1) << i;
    }
    w.u64(pend);
    w.u32(regAy);
    w.b(regAyPending);

    w.u8(static_cast<std::uint8_t>(state));
    // The running kernel is named by its microcode entry id; the
    // Kernel pointer itself is process-local.
    bool running = current != nullptr;
    Word entry = 0;
    if (running) {
        for (const auto &[e, k] : microcode) {
            if (&k == current) {
                entry = e;
                break;
            }
        }
    }
    w.b(running);
    w.u32(entry);
    w.u64(pc);
    w.u32(paramsToRead);
    w.u32(paramIndex);
    w.u32(decodeLeft);
    w.b(pmuCall);
    for (std::int32_t p : params)
        w.i32(p);
    w.u32(static_cast<std::uint32_t>(loopStack.size()));
    for (const LoopFrame &f : loopStack) {
        w.u64(f.bodyPc);
        w.u32(f.remaining);
    }
    w.u32(static_cast<std::uint32_t>(inflight.size()));
    for (const InFlight &f : inflight) {
        w.u64(f.when);
        w.u32(f.value);
        w.u8(f.dstMask);
        w.u8(f.dstReg);
    }
    w.u64(wbReadyAt);

    w.b(_faulted);
    w.b(_broken);
    w.b(_dead);
    w.u64(hangUntil);
    w.str(faultWhy);
    w.u16(callTrack);
    w.u8(fpu->flags());

    for (const TimedFifo *q :
         {&_tpx, &_tpy, &_tpo, &_tpi, &_sum, &_ret, &_reby})
        q->saveState(w);
}

void
Cell::loadState(snap::Reader &r, std::uint32_t version)
{
    (void)version;
    std::uint32_t nkernels = r.u32();
    microcode.clear();
    current = nullptr;
    for (std::uint32_t i = 0; i < nkernels; ++i) {
        Word entry = r.u32();
        unsigned nparams = r.u32();
        std::string kname = r.str();
        std::vector<std::uint32_t> image(r.u32());
        for (std::uint32_t &word : image)
            word = r.u32();
        try {
            loadMicrocode(entry, isa::decode(image, kname), nparams);
        } catch (const Error &e) {
            r.fail(name() + ": snapshot microcode entry " +
                   std::to_string(entry) + " rejected: " + e.what());
        }
    }
    for (Word &v : regs)
        v = r.u32();
    std::uint64_t pend = r.u64();
    for (unsigned i = 0; i < isa::numRegs; ++i)
        regPending[i] = (pend >> i) & 1;
    regAy = r.u32();
    regAyPending = r.b();

    std::uint8_t st = r.u8();
    if (st > static_cast<std::uint8_t>(SeqState::PmuRespond))
        r.fail(name() + ": bad sequencer state " + std::to_string(st));
    state = static_cast<SeqState>(st);
    bool running = r.b();
    Word entry = r.u32();
    current = nullptr;
    if (running) {
        auto it = microcode.find(entry);
        if (it == microcode.end())
            r.fail(name() + ": running microcode entry " +
                   std::to_string(entry) + " is not installed");
        current = &it->second;
    }
    pc = r.u64();
    if (current && pc >= current->prog.size())
        r.fail(name() + ": pc " + std::to_string(pc) +
               " out of range for kernel '" + current->prog.name() +
               "'");
    paramsToRead = r.u32();
    paramIndex = r.u32();
    decodeLeft = r.u32();
    pmuCall = r.b();
    if (paramIndex > isa::numParams || paramsToRead > isa::numParams)
        r.fail(name() + ": parameter cursor out of range");
    for (std::int32_t &p : params)
        p = r.i32();
    loopStack.assign(r.u32(), LoopFrame{});
    for (LoopFrame &f : loopStack) {
        f.bodyPc = r.u64();
        f.remaining = r.u32();
        if (current && f.bodyPc >= current->prog.size())
            r.fail(name() + ": loop frame pc out of range");
    }
    inflight.assign(r.u32(), InFlight{});
    for (InFlight &f : inflight) {
        f.when = r.u64();
        f.value = r.u32();
        f.dstMask = r.u8();
        f.dstReg = r.u8();
        if ((f.dstMask & isa::DstReg) && f.dstReg >= isa::numRegs)
            r.fail(name() + ": in-flight writeback register out of "
                            "range");
    }
    wbReadyAt = r.u64();

    _faulted = r.b();
    _broken = r.b();
    _dead = r.b();
    hangUntil = r.u64();
    faultWhy = r.str();
    callTrack = r.u16();
    fpu->setFlags(r.u8());

    for (TimedFifo *q :
         {&_tpx, &_tpy, &_tpo, &_tpi, &_sum, &_ret, &_reby})
        q->loadState(r);

    // Derived caches rebuild lazily against the restored state.
    fastBodies.clear();
    burstBody = nullptr;
}

std::string
Cell::statusLine() const
{
    const char *st = "?";
    switch (state) {
      case SeqState::Idle: st = "idle"; break;
      case SeqState::ReadParams: st = "read-params"; break;
      case SeqState::Decode: st = "decode"; break;
      case SeqState::Run: st = "run"; break;
      case SeqState::PmuRespond: st = "pmu-respond"; break;
    }
    std::string health;
    if (_dead)
        health = " DEAD";
    else if (_faulted)
        health = strfmt(" FAULTED(%s)", faultWhy.c_str());
    else if (hangUntil != 0)
        health = strfmt(" hung-until=%llu",
                        (unsigned long long)hangUntil);
    return strfmt("state=%s%s kernel=%s pc=%zu tpi=%zu tpx=%zu tpo=%zu "
                  "sum=%zu ret=%zu reby=%zu inflight=%zu",
                  st, health.c_str(),
                  current ? current->prog.name().c_str() : "-", pc,
                  _tpi.size(), _tpx.size(), _tpo.size(), _sum.size(),
                  _ret.size(), _reby.size(), inflight.size());
}

} // namespace opac::cell
