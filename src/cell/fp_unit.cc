#include "cell/fp_unit.hh"

#include "common/logging.hh"

namespace opac::cell
{

namespace
{

class SoftFpUnit : public FpUnit
{
  public:
    Word
    mulImpl(Word a, Word b) override
    {
        return sf::mul(a, b, ctx);
    }

    Word
    addImpl(Word a, Word b, isa::AddOp op) override
    {
        switch (op) {
          case isa::AddOp::Add:
            return sf::add(a, b, ctx);
          case isa::AddOp::SubAB:
            return sf::sub(a, b, ctx);
          case isa::AddOp::SubBA:
            return sf::sub(b, a, ctx);
        }
        opac_panic("bad AddOp");
    }

    std::uint8_t flags() const override { return ctx.flags; }

    void setFlags(std::uint8_t f) override { ctx.flags = f; }

  private:
    sf::Context ctx;
};

class NativeFpUnit : public FpUnit
{
  public:
    Word
    mulImpl(Word a, Word b) override
    {
        return floatToWord(wordToFloat(a) * wordToFloat(b));
    }

    Word
    addImpl(Word a, Word b, isa::AddOp op) override
    {
        float x = wordToFloat(a);
        float y = wordToFloat(b);
        switch (op) {
          case isa::AddOp::Add:
            return floatToWord(x + y);
          case isa::AddOp::SubAB:
            return floatToWord(x - y);
          case isa::AddOp::SubBA:
            return floatToWord(y - x);
        }
        opac_panic("bad AddOp");
    }
};

class TokenFpUnit : public FpUnit
{
  public:
    bool valueFree() const override { return true; }

  protected:
    Word mulImpl(Word, Word) override { return 0; }
    Word addImpl(Word, Word, isa::AddOp) override { return 0; }
};

} // anonymous namespace

void
FpUnit::registerStats(stats::StatGroup &parent)
{
    statGroup = std::make_unique<stats::StatGroup>("fpu", &parent);
    statGroup->addCounter("muls", &statMuls, "multiplier invocations");
    statGroup->addCounter("adds", &statAdds, "adder invocations");
}

std::unique_ptr<FpUnit>
makeFpUnit(FpKind kind)
{
    switch (kind) {
      case FpKind::Soft:
        return std::make_unique<SoftFpUnit>();
      case FpKind::Native:
        return std::make_unique<NativeFpUnit>();
      case FpKind::Token:
        return std::make_unique<TokenFpUnit>();
    }
    opac_panic("bad FpKind");
}

} // namespace opac::cell
