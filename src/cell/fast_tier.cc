/**
 * @file
 * Superop fast tier of the cell sequencer.
 *
 * The compute-bound phase of every OPAC kernel is an innermost hardware
 * loop whose body reads and writes only cell-local state: the sum, ret
 * and reby queues, the register file and regay (the matupdate /
 * convolution fma bodies of section 7). While the sequencer streams
 * such a body, per-cycle lock-step with the rest of the machine buys
 * nothing — the host cannot observe anything the body touches — so the
 * cell advertises a multi-cycle quantum to the engine (burstQuantum)
 * and, when the engine proves every other component passive for a
 * window, executes the window in one call (burstRun).
 *
 * The contract is byte-exactness: burstRun must leave every counter,
 * queue and register exactly as the same number of live tick() rounds
 * would have. Two execution levels provide it:
 *
 *  - the generic level reuses the interpreter's own building blocks
 *    (drainWritebacks, checkHazards, issueCompute, emitStall) cycle by
 *    cycle and replaces only the loop-wrap control step and the
 *    per-cycle occupancy sampling (run-length batched) with cheaper
 *    equivalents — exact for any eligible body, but no faster than
 *    the interpreter;
 *  - the specialized level (turboRun) recognizes the canonical
 *    steady-state body of the compute-bound kernels — one chained
 *    `fma(<recirculating local queue>, <register/constant>, <popped
 *    local queue>, Dst<same queue>)`, matupdate's column update and
 *    the convolution passes — and, after verifying sufficient
 *    conditions for the window to be dense (full FP pipeline landing
 *    one result per cycle, both queues streamable, no stall possible),
 *    executes each cycle as two ring rotations plus the FP ops,
 *    settling every counter, watermark and occupancy sample in bulk
 *    afterwards. This is where the fast tier's speedup comes from.
 *
 * Eligibility ("compilation") is a one-time analysis per loop body,
 * cached in Cell::fastBodies and invalidated by loadMicrocode():
 *
 *  - every instruction in [bodyPc, endPc) is a Compute op (no nested
 *    LoopBegin, no SetParam / ResetFifo / Halt — the body is the
 *    innermost, straight-line steady state);
 *  - no operand pops tpx or tpy, and no destination (compute or move)
 *    targets tpo: the four interface queues are provably untouched, so
 *    the engine's passive-component argument reduces to the ordinary
 *    quiescent-skip argument;
 *  - controlOpsPerCycle >= 2, so the interpreter's zero-overhead wrap
 *    (LoopEnd consumed, then the body's first Compute reached) fits in
 *    one cycle's control budget, which is what the executor models.
 */

#include "cell/cell.hh"

#include "common/logging.hh"

namespace opac::cell
{

using isa::Opcode;
using isa::Src;

namespace
{

/** True when @p op pops an interface queue (burst-ineligible read). */
bool
readsInterface(const isa::Operand &op)
{
    return op.used() && (op.kind == Src::TpX || op.kind == Src::TpY);
}

/** True for the head-to-tail loop-back read kinds (cell.cc has its
 *  own copy in file scope). */
bool
isRecirc(Src s)
{
    return s == Src::SumR || s == Src::RetR || s == Src::RebyR;
}

/** Deepest FP pipeline turboRun() handles (mulLatency + addLatency). */
constexpr unsigned kMaxTurboDepth = 16;

/** The destination bit writing back into the queue @p pop reads. */
std::uint8_t
dstBitFor(Src pop)
{
    switch (pop) {
      case Src::Sum:
        return isa::DstSum;
      case Src::Ret:
        return isa::DstRet;
      case Src::Reby:
        return isa::DstReby;
      default:
        return 0;
    }
}

/** True for the register/constant operand kinds readOperand() serves
 *  without queue traffic (stable across a window with no register
 *  writes in flight). */
bool
isScalarOperand(Src s)
{
    return s == Src::RegAy || s == Src::Reg || s == Src::Zero
           || s == Src::One;
}

} // namespace

const Cell::FastBody *
Cell::fastBodyFor(std::size_t body_pc)
{
    for (const FastBody &b : fastBodies) {
        if (b.kernel == current && b.bodyPc == body_pc)
            return &b;
    }

    FastBody b{current, body_pc, body_pc, false};
    bool eligible = cfg.controlOpsPerCycle >= 2;
    std::size_t scan = body_pc;
    for (;; ++scan) {
        opac_assert(scan < current->prog.size(),
                    "unterminated loop body in '%s'",
                    current->prog.name().c_str());
        const isa::Instr &in = current->prog.at(scan);
        if (in.op == Opcode::LoopEnd)
            break;
        if (in.op != Opcode::Compute) {
            // Nested loop or sequencer op: not a straight-line
            // steady-state body.
            eligible = false;
            break;
        }
        if (readsInterface(in.mulA) || readsInterface(in.mulB)
            || readsInterface(in.addA) || readsInterface(in.addB)
            || readsInterface(in.mvSrc)
            || ((in.dstMask | in.mvDstMask) & isa::DstTpO)) {
            eligible = false;
            break;
        }
    }
    b.endPc = scan;
    b.eligible = eligible;

    // Specialize the canonical single-instruction chained-fma body.
    // Anything here is a pure strengthening: a body that fails these
    // checks still bursts on the generic level.
    if (eligible && scan == body_pc + 1
        && cfg.mulLatency + cfg.addLatency >= 1
        && cfg.mulLatency + cfg.addLatency <= kMaxTurboDepth) {
        const isa::Instr &in = current->prog.at(body_pc);
        const isa::DecodedInstr &d = current->prog.decodedAt(body_pc);
        if (d.mulActive && d.addActive && d.addAFromMul && !d.mvActive
            && d.numNeeds == 0 && !d.wawAy && d.numWawRegs == 0
            && isRecirc(in.mulA.kind) && isScalarOperand(in.mulB.kind)
            && dstBitFor(in.addB.kind) != 0
            && in.dstMask == dstBitFor(in.addB.kind)
            && in.mvDstMask == 0
            && queueFor(in.mulA.kind) != queueFor(in.addB.kind)) {
            b.turbo = true;
            b.turboRotQ = queueFor(in.mulA.kind);
            b.turboPopQ = queueFor(in.addB.kind);
            b.turboDstMask = in.dstMask;
            b.turboMulB = in.mulB;
            b.turboAddOp = in.addOp;
        }
    }

    if (eligible)
        ++statFtCompiled;
    else
        ++statFtIneligible;
    fastBodies.push_back(b);
    return &fastBodies.back();
}

std::uint64_t
Cell::turboRun(Cycle from, Cycle cycles, sim::Engine &engine)
{
    const FastBody *b = burstBody;

    // Sufficient conditions for a dense, stall-free window. With the
    // body a single instruction, every cycle of the per-cycle path
    // from this state is: drain the one writeback landing this cycle
    // (when == now, pushReserved into the pop queue), wrap (LoopEnd +
    // re-entry inside the control budget), recirculate the mul
    // operand, pop the addend, issue (reserve + one new in-flight
    // entry landing mulLatency + addLatency cycles out). The checks
    // pin exactly that shape; anything else falls back.
    if (pc != b->endPc && pc != b->bodyPc)
        return 0;
    const unsigned depth = cfg.mulLatency + cfg.addLatency;
    if (inflight.size() != depth || wbReadyAt > from)
        return 0;
    for (unsigned i = 0; i < depth; ++i) {
        if (inflight[i].when != from + Cycle(i)
            || inflight[i].dstMask != b->turboDstMask)
            return 0;
    }
    TimedFifo *const popq = b->turboPopQ;
    TimedFifo *const rotq = b->turboRotQ;
    if (!popq->streamable(from) || !rotq->streamable(from)
        || popq->space() == 0)
        return 0;

    const std::uint64_t w = cycles;
    // No register write is in flight (every entry's dstMask is the
    // queue bit), so the scalar operand is constant over the window.
    const Word bval = readOperand(b->turboMulB, from, 0);
    const bool token = fpu->valueFree();

    Word vals[kMaxTurboDepth];
    for (unsigned i = 0; i < depth; ++i)
        vals[i] = inflight[i].value;

    unsigned vi = 0;
    for (std::uint64_t k = 0; k < w; ++k) {
        const Cycle now = from + Cycle(k);
        const Word s = popq->streamExchange(vals[vi], now);
        const Word a = rotq->streamRotate(now);
        vals[vi] = token
                       ? 0
                       : fpu->add(fpu->mul(a, bval), s, b->turboAddOp);
        if (++vi == depth)
            vi = 0;
    }

    // Settle everything the per-cycle path would have left behind.
    popq->streamCommit(w, true);
    rotq->streamCommit(w, false);
    if (token)
        fpu->countBulk(w);
    for (unsigned j = 0; j < depth; ++j) {
        inflight[j].when = from + Cycle(w) + Cycle(j);
        inflight[j].value = vals[(vi + j) % depth];
    }
    wbReadyAt = from + Cycle(w);
    const std::uint64_t wraps = w - (pc == b->bodyPc ? 1 : 0);
    LoopFrame &f = loopStack.back();
    f.remaining -= std::uint32_t(wraps);
    pc = b->endPc;
    statBusy += w;
    statFma += w;
    statIssued += w;
    statFtBurstIssued += w;
    statFtBurstIters += wraps;
    statFtTurboCycles += w;
    engine.noteProgress();
    return w;
}

Cycle
Cell::burstQuantum(Cycle now)
{
    // Not in a streamable state: silent (no fallback counter) — this
    // is the ordinary non-steady-state case, not a refused burst.
    if (!cfg.fastTier || _dead || _faulted || now < hangUntil
        || state != SeqState::Run || loopStack.empty())
        return 0;
    if (tracer || traceHook) {
        // Observers need the per-cycle event edges of the interpreter.
        ++statFtFallbackObserver;
        return 0;
    }
    const LoopFrame &f = loopStack.back();
    const FastBody *b = fastBodyFor(f.bodyPc);
    if (!b->eligible) {
        ++statFtFallbackBody;
        return 0;
    }
    if (pc < b->bodyPc || pc > b->endPc)
        return 0;
    // A result already in flight toward tpo would mutate an interface
    // queue mid-window; wait for it to land on the per-cycle path.
    for (const InFlight &w : inflight) {
        if (w.dstMask & isa::DstTpO) {
            ++statFtFallbackInflight;
            return 0;
        }
    }

    // The quantum is the number of issues left in the loop region:
    // the tail of the current iteration plus `remaining` full bodies.
    // Any window w <= quantum keeps pc inside [bodyPc, endPc] with
    // every wrap taken on remaining > 0 — loop exit, and whatever
    // follows it, happens outside the window.
    const std::size_t len = b->endPc - b->bodyPc;
    burstBody = b;
    return Cycle(b->endPc - pc) + Cycle(f.remaining) * Cycle(len);
}

void
Cell::burstRun(Cycle from, Cycle cycles, sim::Engine &engine,
               std::uint64_t *progress_bits)
{
    const FastBody *b = burstBody;
    opac_assert(b && b->kernel == current,
                "%s: burstRun without a validated body", name().c_str());
    ++statFtBursts;
    statFtBurstCycles += cycles;

    // Run-length batching of the per-cycle occupancy samples tick()
    // takes on sum/ret/reby: flush a run only when the count changes
    // (and once at the end), byte-identical to cycles individual
    // samples.
    TimedFifo *const sampled[3] = {&_sum, &_ret, &_reby};
    std::size_t runVal[3];
    std::uint64_t runLen[3] = {0, 0, 0};
    for (int i = 0; i < 3; ++i)
        runVal[i] = sampled[i]->size();
    auto sampleCycle = [&] {
        for (int i = 0; i < 3; ++i) {
            std::size_t v = sampled[i]->size();
            if (v != runVal[i]) {
                if (runLen[i])
                    sampled[i]->sampleOccupancyRun(runVal[i], runLen[i]);
                runVal[i] = v;
                runLen[i] = 0;
            }
            ++runLen[i];
        }
    };

    Cycle k = 0;
    while (k < cycles) {
        // A protection fault raised by a mid-window pop (queue parity)
        // freezes the sequencer exactly as on the per-cycle path; the
        // rest of the window becomes the frozen tail below.
        if (_faulted)
            break;
        const Cycle now = from + k;

        // Specialized executor first: it consumes the whole remaining
        // window when the steady state is dense, which it stays for —
        // nothing inside the window can perturb it.
        if (b->turbo) {
            const Cycle t = Cycle(turboRun(now, cycles - k, engine));
            if (t != 0) {
                // Queue occupancies were invariant: extend the open
                // runs. Every turbo cycle progressed: fill its span
                // of the (sequentially shared) progress bitmap.
                for (int i = 0; i < 3; ++i)
                    runLen[i] += t;
                for (Cycle c = k; c < k + t;) {
                    if ((c & 63) == 0 && c + 64 <= k + t) {
                        progress_bits[c >> 6] = ~std::uint64_t(0);
                        c += 64;
                    } else {
                        progress_bits[c >> 6] |=
                            std::uint64_t(1) << (c & 63);
                        ++c;
                    }
                }
                k += t;
                continue;
            }
        }

        bool prog = false;
        if (now >= wbReadyAt) {
            const std::size_t before = inflight.size();
            drainWritebacks(now, engine);
            prog = inflight.size() != before;
        }

        // tickSequencer, Run state: busy cycle, zero-overhead wrap,
        // hazard-checked issue. The quantum guarantees remaining > 0
        // at every wrap inside the window.
        ++statBusy;
        if (pc == b->endPc) {
            LoopFrame &f = loopStack.back();
            --f.remaining;
            pc = f.bodyPc;
            ++statFtBurstIters;
        }
        const isa::Instr &in = current->prog.at(pc);
        const isa::DecodedInstr &d = current->prog.decodedAt(pc);
        StallCause stall = checkHazards(d, now);
        if (stall == StallCause::None) {
            issueCompute(in, d, now);
            ++pc;
            engine.noteProgress();
            ++statFtBurstIssued;
            prog = true;
        } else {
            emitStall(stall, now);
        }

        if (prog)
            progress_bits[k >> 6] |= std::uint64_t(1) << (k & 63);
        sampleCycle();
        ++k;
    }
    for (int i = 0; i < 3; ++i) {
        if (runLen[i])
            sampled[i]->sampleOccupancyRun(runVal[i], runLen[i]);
    }

    if (k < cycles) {
        // Frozen tail after a mid-window fault: the per-cycle path
        // counts hang cycles and keeps sampling occupancy, with no
        // busy cycles and no writeback drain.
        const Cycle rest = cycles - k;
        statHangCycles += rest;
        _sum.sampleOccupancy(rest);
        _ret.sampleOccupancy(rest);
        _reby.sampleOccupancy(rest);
    }
    burstBody = nullptr;
}

} // namespace opac::cell
