/**
 * @file
 * Pluggable arithmetic back-ends for the cell datapath.
 *
 * The timing of the simulator never depends on operand *values* (there
 * are no data-dependent stalls in the OPAC pipeline), so the arithmetic
 * can be swapped without changing any cycle count:
 *
 *  - SoftFpUnit:   the bit-accurate softfloat (reference; default),
 *  - NativeFpUnit: host hardware floats (fast functional runs),
 *  - TokenFpUnit:  no arithmetic at all (pure timing studies — the big
 *                  table sweeps).
 *
 * A test asserts that cycle counts are identical across all three.
 */

#ifndef OPAC_CELL_FP_UNIT_HH
#define OPAC_CELL_FP_UNIT_HH

#include <memory>

#include "common/types.hh"
#include "isa/operand.hh"
#include "softfloat/float32.hh"
#include "stats/stats.hh"

namespace opac::cell
{

/** Which arithmetic back-end a cell uses. */
enum class FpKind
{
    Soft,   //!< bit-accurate binary32 softfloat
    Native, //!< host float arithmetic
    Token,  //!< values are not computed (timing-only)
};

/** The two discrete FP operators of the OPAC computation block. */
class FpUnit
{
  public:
    virtual ~FpUnit() = default;

    /** Multiplier: a * b. */
    Word
    mul(Word a, Word b)
    {
        ++statMuls;
        return mulImpl(a, b);
    }

    /** Adder: a op b. */
    Word
    add(Word a, Word b, isa::AddOp op)
    {
        ++statAdds;
        return addImpl(a, b, op);
    }

    /** Accumulated IEEE exception flags (0 where not modelled). */
    virtual std::uint8_t flags() const { return 0; }

    /** Restore the accumulated flags (snapshot resume); no-op where
     *  flags are not modelled. */
    virtual void setFlags(std::uint8_t f) { (void)f; }

    /**
     * True when mulImpl/addImpl compute nothing and always return 0
     * (the Token back-end). The fast tier's specialized executor then
     * skips the per-cycle calls, substitutes 0 results and settles the
     * invocation counters in bulk with countBulk().
     */
    virtual bool valueFree() const { return false; }

    /** Count @p n multiplier and @p n adder invocations whose results
     *  the caller reproduced without calling mul()/add(). */
    void
    countBulk(std::uint64_t n)
    {
        statMuls += n;
        statAdds += n;
    }

    /**
     * Register the operator-invocation counters as an "fpu" child of
     * @p parent (typically the owning cell's group).
     */
    void registerStats(stats::StatGroup &parent);

  protected:
    virtual Word mulImpl(Word a, Word b) = 0;
    virtual Word addImpl(Word a, Word b, isa::AddOp op) = 0;

  private:
    std::unique_ptr<stats::StatGroup> statGroup;
    stats::Counter statMuls;
    stats::Counter statAdds;
};

/** Factory for the configured back-end. */
std::unique_ptr<FpUnit> makeFpUnit(FpKind kind);

} // namespace opac::cell

#endif // OPAC_CELL_FP_UNIT_HH
