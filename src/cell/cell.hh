/**
 * @file
 * The OPAC cell: computation block + sequencer (paper section 5, fig. 4).
 *
 * The cell contains:
 *  - interface FIFO queues tpx, tpy (operands in), tpo (results out) and
 *    tpi (kernel calls + parameters in),
 *  - local FIFO queues sum, ret and reby of capacity Tf,
 *  - the register regay and a small multiport register file,
 *  - a pipelined FP multiplier and adder with a direct multiply-add
 *    chain path, plus a one-cycle move/bypass path,
 *  - a microcode sequencer with hardware loops (zero-cycle loop
 *    overhead, per [Se91]) and a tiny parameter ALU.
 *
 * Timing model (one micro-instruction issued per cycle):
 *  - issue requires every popped queue non-empty, every net-pushed queue
 *    to have room (a slot is reserved at issue for the in-flight
 *    result), and no pending-write register among the reads;
 *  - a chained multiply-add completes after mulLatency + addLatency
 *    cycles, mul-only after mulLatency, add-only after addLatency, a
 *    move after moveLatency;
 *  - recirculating reads (pop + repush) happen combinationally at issue;
 *  - a word pushed into a FIFO at cycle t is poppable at t +
 *    fifoLatency.
 *
 * Call protocol on tpi: one word with the microcode entry id, then the
 * kernel's declared number of parameter words, then a fixed decode
 * delay. This models the paper's task granularity: the host names a
 * compute-bound kernel and its array sizes; the cell runs it to
 * completion.
 */

#ifndef OPAC_CELL_CELL_HH
#define OPAC_CELL_CELL_HH

#include <array>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "cell/fp_unit.hh"
#include "stats/stats.hh"
#include "fifo/timed_fifo.hh"
#include "isa/program.hh"
#include "sim/engine.hh"

namespace opac::cell
{

/** Static configuration of one cell. */
struct CellConfig
{
    std::size_t tf = 2048;          //!< sum/ret/reby capacity (words)
    std::size_t interfaceDepth = 2048; //!< tpx/tpy/tpo capacity
    std::size_t tpiDepth = 64;      //!< call queue capacity
    unsigned mulLatency = 3;        //!< multiplier pipeline depth
    unsigned addLatency = 3;        //!< adder pipeline depth
    unsigned moveLatency = 1;       //!< bypass path latency
    unsigned fifoLatency = 1;       //!< FIFO fall-through latency
    unsigned callDecodeCycles = 4;  //!< fixed per-call dispatch cost
    unsigned controlOpsPerCycle = 8; //!< sequencer lookahead bound
    FpKind fp = FpKind::Soft;       //!< arithmetic back-end
    /** Word protection on all seven FIFO queues (--parity=). */
    fault::ParityMode parity = fault::ParityMode::Off;
    /**
     * Offer superop bursts of steady-state innermost loop bodies to
     * the engine (--fast-tier=). Results are byte-identical either
     * way; off forces the pure per-cycle interpreter.
     */
    bool fastTier = true;
};

/** Why the sequencer could not issue this cycle (for stall stats). */
enum class StallCause
{
    None,
    SrcEmpty,
    DstFull,
    RegPending,
};

/**
 * Architectural performance-monitor registers of one cell. The host
 * reads them over the normal call interface: a call word with the
 * reserved entry pmuCallEntry, one parameter word selecting the
 * register, and the 64-bit value returned on tpo as two words (low
 * half first). The registers mirror the harness-side stats registry,
 * so observability is part of the simulated machine, not only of the
 * harness.
 */
enum class PmuReg : std::uint32_t
{
    Issued = 0,        //!< micro-ops issued
    Fma,               //!< chained multiply-adds issued
    MulOnly,           //!< multiply-only issues
    AddOnly,           //!< add-only issues
    Moves,             //!< move-path transfers
    BusyCycles,        //!< cycles not idle
    IdleCycles,        //!< cycles waiting for calls
    StallSrcEmpty,     //!< issue stalls: source queue empty
    StallDstFull,      //!< issue stalls: destination queue full
    StallRegPending,   //!< issue stalls: register write in flight
    Calls,             //!< kernel calls executed
    HighWaterTpx,      //!< deepest tpx occupancy
    HighWaterTpy,      //!< deepest tpy occupancy
    HighWaterTpo,      //!< deepest tpo occupancy
    HighWaterTpi,      //!< deepest tpi occupancy
    HighWaterSum,      //!< deepest sum occupancy
    HighWaterRet,      //!< deepest ret occupancy
    HighWaterReby,     //!< deepest reby occupancy
    NumRegs,
};

/** Reserved tpi entry id dispatching a PMU read, never a kernel. */
constexpr Word pmuCallEntry = 0xffffffffu;

/**
 * Reserved tpi entry id decoded at the write port as a hardware reset
 * line: the recovery path's in-band cell reset (Host::resetOp). Never
 * enters the call queue and never names a kernel.
 */
constexpr Word resetCallEntry = 0xfffffffeu;

/** One OPAC cell, a sim::Component on the coprocessor clock. */
class Cell : public sim::Component
{
  public:
    Cell(std::string name, const CellConfig &cfg,
         stats::StatGroup *parent_stats = nullptr);

    /**
     * Install a kernel in the microcode store.
     * @param entry   Entry id used by call words on tpi.
     * @param prog    Validated microcode.
     * @param nparams Number of parameter words following the call word.
     */
    void loadMicrocode(Word entry, isa::Program prog, unsigned nparams);

    // Host-side access to the interface queues.
    TimedFifo &tpx() { return _tpx; }
    TimedFifo &tpy() { return _tpy; }
    TimedFifo &tpo() { return _tpo; }
    TimedFifo &tpi() { return _tpi; }

    const CellConfig &config() const { return cfg; }

    // sim::Component interface.
    void tick(sim::Engine &engine) override;
    bool done() const override;
    std::string statusLine() const override;

    /**
     * Cells only touch their own state and their own seven queues, so
     * the parallel engine may tick them concurrently: the host sees a
     * push at t no earlier than t + fifoLatency, and a same-cycle
     * tpo.pop() only *frees* space the cell would observe anyway.
     */
    bool independent() const override { return true; }

    /**
     * Register the host as the wake target on the other end of the
     * four interface queues (tpx/tpy/tpo/tpi), so a cell-side
     * mutation — a result pushed on tpo, operands consumed from
     * tpx/tpy — wakes a sleeping host under the event engine. Called
     * once at coprocessor build time.
     */
    void
    setBusWakeNeighbor(sim::Component *host)
    {
        _tpx.setWakeTargets(this, host);
        _tpy.setWakeTargets(this, host);
        _tpo.setWakeTargets(this, host);
        _tpi.setWakeTargets(this, host);
    }

    /**
     * Idle-cycle skipping support: the cell's future events are FIFO
     * fronts falling through (any of the seven queues — tpo matters
     * to the host's Recv), FP/move pipeline results landing, and the
     * fixed decode countdown.
     */
    Cycle nextEventAt(Cycle now) const override;
    void fastForward(Cycle from, Cycle cycles,
                     sim::Engine &engine) override;

    /**
     * Superop fast tier (src/cell/fast_tier.cc): when the sequencer
     * is streaming the body of an innermost hardware loop that only
     * touches local state (sum/ret/reby, registers — never
     * tpx/tpy/tpo/tpi), grant the engine a quantum of the
     * instructions left in the loop region and execute them in bulk,
     * byte-identical to the per-cycle path.
     */
    Cycle burstQuantum(Cycle now) override;
    void burstRun(Cycle from, Cycle cycles, sim::Engine &engine,
                  std::uint64_t *progress_bits) override;

    /**
     * Snapshot support: serialize the full architectural state —
     * registers, sequencer, loop stack, in-flight pipeline results,
     * fault latches, FP exception flags and all seven queues. The
     * payload leads with the complete microcode store (entry ids plus
     * encoded instruction images), because kernels can be installed
     * at runtime (the conv2d planner generates per-geometry
     * microcode): a restore rebuilds exactly the store the snapshot
     * saw, whatever the fresh machine had installed. Decoded-body
     * caches (the fast tier) rebuild on demand and are not saved.
     */
    std::uint32_t stateVersion() const override { return 1; }
    void saveState(snap::Writer &w) const override;
    void loadState(snap::Reader &r, std::uint32_t version) override;

    /**
     * Fast-tier counters (bodies compiled, bursts, bulk iterations,
     * fallback reasons). A detached group — never registered under
     * the coprocessor's stats root, because burst engagement depends
     * on engine mode and flags while the stats JSON must not.
     */
    const stats::StatGroup &fastTierStats() const { return ftGroup; }
    std::uint64_t burstCyclesExecuted() const
    {
        return statFtBurstCycles.value();
    }

    // Observability.
    std::uint64_t issuedOps() const { return statIssued.value(); }
    std::uint64_t fmaOps() const { return statFma.value(); }
    std::uint64_t busyCycles() const { return statBusy.value(); }
    std::uint8_t fpFlags() const { return fpu->flags(); }

    /**
     * Architectural PMU readback (the same value the tpi status call
     * returns). Out-of-range registers read as zero.
     */
    std::uint64_t pmuRead(PmuReg reg) const;

    /** The cell's statistics subtree. */
    stats::StatGroup &stats() { return statGroup; }

    /**
     * Install a cycle-trace hook: one line per sequencer event (call
     * dispatch, instruction issue, halt), formatted
     * "<cycle> <event>". Pass nullptr to disable. Tracing is off by
     * default and costs nothing when disabled.
     */
    void setTraceHook(std::function<void(const std::string &)> hook);

    /**
     * Start emitting structured trace events (issue/retire/stall,
     * call begin/end, and FIFO traffic of all seven queues) into
     * @p t. Costs one null-pointer test per event site when detached.
     */
    void attachTracer(trace::Tracer *t);

    /** Local queues, exposed for white-box tests. */
    TimedFifo &sumQueue() { return _sum; }
    TimedFifo &retQueue() { return _ret; }
    TimedFifo &rebyQueue() { return _reby; }

    // --- fault injection and recovery ------------------------------

    /**
     * The reset line (the reserved resetCallEntry call decoded at the
     * tpi write port): drop every queue, reservation, in-flight
     * result and sequencer state, clear a hang or fault flag, keep
     * the microcode store, registers and statistics. A dead cell
     * stays dead.
     */
    void hardReset(Cycle now);

    /**
     * Host gave up on this cell: reset it so nothing is left pending
     * and take it out of the machine permanently (done() is true, it
     * never ticks again).
     */
    void markDead(Cycle now);

    /**
     * Freeze sequencer and writeback for @p duration cycles
     * (duration 0: permanently — the cell is faulted until a reset).
     * Queue pushes from the host still land; the machine just stops
     * consuming.
     */
    void injectHang(Cycle now, Cycle duration);

    /** The sequencer spontaneously drops back to Idle mid-kernel. */
    void injectSpuriousHalt(Cycle now);

    /**
     * Enter the faulted state: frozen until hardReset(). Raised by
     * queue protection errors, unknown call entries and permanent
     * hangs; without recovery the engine watchdog turns it into a
     * DeadlockError.
     */
    void enterFaulted(const char *why, Cycle now);

    bool faulted() const { return _faulted; }
    bool dead() const { return _dead; }
    std::uint64_t faultCount() const { return statFaults.value(); }
    std::uint64_t hardResets() const { return statHardResets.value(); }

  private:
    struct Kernel
    {
        isa::Program prog;
        unsigned nparams;
    };

    /** A value travelling through the FP or move pipeline. */
    struct InFlight
    {
        Cycle when;
        Word value;
        std::uint8_t dstMask;
        std::uint8_t dstReg;
    };

    enum class SeqState
    {
        Idle,       //!< waiting for a call word on tpi
        ReadParams, //!< popping parameter words
        Decode,     //!< fixed dispatch delay
        Run,        //!< executing microcode
        PmuRespond, //!< pushing a PMU register value to tpo
    };

    // -- helpers -------------------------------------------------------
    TimedFifo *queueFor(isa::Src s);
    Word readOperand(const isa::Operand &op, Cycle now, Word mul_out);
    StallCause checkHazards(const isa::DecodedInstr &d, Cycle now) const;
    void issueCompute(const isa::Instr &in, const isa::DecodedInstr &d,
                      Cycle now);
    void emitStall(StallCause cause, Cycle now);
    void scheduleWrite(Cycle when, Word value, std::uint8_t mask,
                       std::uint8_t dst_reg, Cycle now);
    void drainWritebacks(Cycle now, sim::Engine &engine);
    bool stepControl(Cycle now);
    void tickSequencer(Cycle now, sim::Engine &engine);

    /**
     * One analyzed innermost-loop body (fast_tier.cc). The program is
     * already decoded, so "compiling" pins the region [bodyPc, endPc]
     * (endPc = the LoopEnd) and proves it burst-eligible: straight-
     * line Compute ops touching only local queues and registers.
     */
    struct FastBody
    {
        const Kernel *kernel;
        std::size_t bodyPc;
        std::size_t endPc;
        bool eligible;

        /**
         * Superop specialization: the body is the canonical
         * steady-state chained fma of the compute-bound kernels —
         * one instruction `fma(<recirc local queue>, <reg/const>,
         * <pop local queue>, Dst<same queue>)`, e.g. matupdate's
         * `fma(rebyR, regAy, sum, DstSum)`. turboRun() executes such
         * a body with direct ring rotation and bulk bookkeeping
         * instead of the interpreter building blocks.
         */
        bool turbo = false;
        TimedFifo *turboRotQ = nullptr; //!< recirculating mul operand
        TimedFifo *turboPopQ = nullptr; //!< popped addend == destination
        std::uint8_t turboDstMask = 0;
        isa::Operand turboMulB{};       //!< register/constant operand
        isa::AddOp turboAddOp = isa::AddOp::Add;
    };
    /** Analyze (or fetch the cached analysis of) the innermost body. */
    const FastBody *fastBodyFor(std::size_t body_pc);

    /**
     * Specialized executor for a FastBody::turbo body: execute up to
     * @p cycles steady-state iterations starting at @p from, or return
     * 0 without side effects when the machine state does not satisfy
     * the (checkable, sufficient) steady-state entry conditions.
     */
    std::uint64_t turboRun(Cycle from, Cycle cycles,
                           sim::Engine &engine);

    // -- configuration and structure ------------------------------------
    CellConfig cfg;
    std::unique_ptr<FpUnit> fpu;

    TimedFifo _tpx;
    TimedFifo _tpy;
    TimedFifo _tpo;
    TimedFifo _tpi;
    TimedFifo _sum;
    TimedFifo _ret;
    TimedFifo _reby;

    /** Queue pointers indexed by isa::CellQueue (set in the ctor). */
    std::array<TimedFifo *, isa::numCellQueues> queueTab{};

    std::array<Word, isa::numRegs> regs{};
    std::array<bool, isa::numRegs> regPending{};
    Word regAy = 0;
    bool regAyPending = false;

    std::map<Word, Kernel> microcode;

    // -- sequencer state -------------------------------------------------
    SeqState state = SeqState::Idle;
    const Kernel *current = nullptr;
    std::size_t pc = 0;
    unsigned paramsToRead = 0;
    unsigned paramIndex = 0;
    unsigned decodeLeft = 0;
    bool pmuCall = false; //!< the current tpi call is a PMU read
    std::array<std::int32_t, isa::numParams> params{};

    struct LoopFrame
    {
        std::size_t bodyPc;       //!< first instruction of the body
        std::uint32_t remaining;  //!< iterations left after current
    };
    std::vector<LoopFrame> loopStack;

    // -- fault state -----------------------------------------------------
    bool _faulted = false; //!< frozen until hardReset()
    bool _broken = false;  //!< hard fault: re-faults after every reset
    bool _dead = false;    //!< permanently out of the machine
    Cycle hangUntil = 0;   //!< frozen while now < hangUntil
    std::string faultWhy;  //!< what flagged the fault (status line)

    /** Analyzed loop bodies, invalidated by loadMicrocode(). */
    std::vector<FastBody> fastBodies;
    /** Body validated by the burstQuantum() that granted the window. */
    const FastBody *burstBody = nullptr;

    std::vector<InFlight> inflight;
    /**
     * Lower bound on the cycle at which any inflight writeback can
     * commit; drainWritebacks returns immediately before it. Updated
     * on scheduleWrite and after every drain pass.
     */
    Cycle wbReadyAt = sim::Component::noEvent;

    std::function<void(const std::string &)> traceHook;

    trace::Tracer *tracer = nullptr;
    std::uint16_t traceComp = 0;
    std::uint16_t callTrack = 0; //!< track of the running kernel's name

    // -- statistics -------------------------------------------------------
    stats::StatGroup statGroup;
    stats::Counter statIssued;
    stats::Counter statFma;
    stats::Counter statMulOnly;
    stats::Counter statAddOnly;
    stats::Counter statMoves;
    stats::Counter statBusy;
    stats::Counter statIdle;
    stats::Counter statStallSrc;
    stats::Counter statStallDst;
    stats::Counter statStallReg;
    stats::Counter statCalls;
    stats::Counter statWritePortConflicts;
    stats::Counter statHangCycles;
    stats::Counter statFaults;
    stats::Counter statHardResets;

    // Fast-tier diagnostics: a detached group (no parent), surfaced
    // only through Coprocessor::fastTierReport() / fastTierStats().
    stats::StatGroup ftGroup;
    stats::Counter statFtCompiled;
    stats::Counter statFtIneligible;
    stats::Counter statFtBursts;
    stats::Counter statFtBurstCycles;
    stats::Counter statFtBurstIssued;
    stats::Counter statFtBurstIters;
    stats::Counter statFtTurboCycles;
    stats::Counter statFtFallbackObserver;
    stats::Counter statFtFallbackBody;
    stats::Counter statFtFallbackInflight;
};

} // namespace opac::cell

#endif // OPAC_CELL_CELL_HH
