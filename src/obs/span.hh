/**
 * @file
 * Request-level job spans — the serve-layer event record of the
 * observability stack (docs/OBSERVABILITY.md).
 *
 * Where src/trace records what the simulated *machine* did cycle by
 * cycle, a JobSpan records what the *service* did with one request:
 * a sequence of phase edges (submit → admit/reject → batch → dispatch
 * → execute → verify → commit/fail/failover), each stamped with the
 * virtual cycle it happened at, plus the placement facts that explain
 * it — shard id, batch id, compatibility key, failover count and the
 * fault-recovery work (retries, re-plans) its batch absorbed.
 *
 * Virtual-time edges are deterministic: the serve scheduler makes
 * every decision in simulated time, so a span stream is byte-identical
 * across engine modes, --sim-threads settings and reruns (the serve
 * extension of the determinism contract in docs/PERFORMANCE.md).
 * Each edge also carries a wall-clock nanosecond stamp for profiling
 * the simulator itself; wall times are excluded from json() unless
 * asked for, so golden comparisons stay exact.
 *
 * Exports: json() is the versioned record stream tools/serve_report
 * ingests; writeChromeTrace() renders the spans through the existing
 * Chrome-trace sink (src/trace) with one track per shard (batch
 * service slices) and one per tenant (in-flight job depth), so a
 * serve_load run opens directly in chrome://tracing.
 */

#ifndef OPAC_OBS_SPAN_HH
#define OPAC_OBS_SPAN_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/types.hh"

namespace opac::obs
{

/** One step of a request's life inside the service. */
enum class Phase : std::uint8_t
{
    Submit,   //!< entered the server (edge at the virtual arrival)
    Admit,    //!< passed admission into the ready queue
    Reject,   //!< refused at admission (terminal)
    Batch,    //!< selected into a batch (shard and batch id attach)
    Dispatch, //!< its batch was handed to the shard worker
    Execute,  //!< the shard engine started serving the batch
    Verify,   //!< engine done; oracle check of the output ran
    Commit,   //!< result delivered as Completed (terminal)
    Fail,     //!< lost — shard died uncommitted (terminal)
    Failover, //!< re-queued off a dying shard (span continues)
    ShardDead, //!< flight-recorder only: the shard itself died
};

const char *phaseName(Phase p);

/** One phase transition: the phase and when it happened. */
struct SpanEdge
{
    Phase phase;
    Cycle at;          //!< virtual time (deterministic)
    std::uint32_t arg; //!< Batch: batch id; placement phases: shard id
    double wallNs;     //!< host wall clock (informational only)
};

/** The full observable life of one request. */
struct JobSpan
{
    std::uint32_t ticket = 0;
    std::uint32_t tenant = 0;
    std::string kind;           //!< kernel kind name ("gemm", ...)
    std::uint64_t compat = 0;   //!< batching compatibility key
    Cycle deadline = 0;         //!< requested latency bound (0 = none)
    int shard = -1;             //!< last shard it ran on (-1: never)
    unsigned batch = 0;         //!< last batch id (1-based; 0: none)
    unsigned failovers = 0;     //!< times re-queued off a dying shard
    std::uint64_t retries = 0;  //!< host txn retries its batch absorbed
    unsigned replans = 0;       //!< JobRunner re-plans its batch absorbed
    std::string note;           //!< rejection / failure reason
    std::vector<SpanEdge> edges;

    /** Cycle of the first edge with @p p, or noEdge when absent. */
    static constexpr Cycle noEdge = ~Cycle(0);
    Cycle edgeAt(Phase p) const;

    bool terminal() const;      //!< reached commit / fail / reject
};

/**
 * The span collection for one server: one JobSpan per ticket,
 * recorded by the serve scheduler as it makes each decision. All
 * mutation happens on the scheduler thread (submit-side opens are
 * serialized by the server lock), in deterministic order.
 */
class SpanLog
{
  public:
    /** Open (or return) the span for @p ticket. Tickets are 1-based
     *  and dense, so storage is a vector indexed by ticket - 1. */
    JobSpan &open(std::uint32_t ticket);

    /** The span for @p ticket; must have been opened. */
    JobSpan &at(std::uint32_t ticket);
    const JobSpan &at(std::uint32_t ticket) const;

    /** Append a phase edge stamped with the current wall clock. */
    void edge(std::uint32_t ticket, Phase p, Cycle at,
              std::uint32_t arg = 0);

    std::size_t size() const { return spans_.size(); }
    const std::vector<JobSpan> &spans() const { return spans_; }

    /**
     * Versioned span records:
     * {"version": 1, "schema": "opac.serve.spans.v1", "spans": [...]}.
     * Deterministic; @p include_wall adds the wall-clock stamps (off
     * for golden comparisons).
     */
    std::string json(bool include_wall = false) const;

    /**
     * Render the spans as Chrome trace-event JSON through the
     * existing trace sink: one process per shard carrying B/E service
     * slices per batch, one process per tenant carrying a counter
     * track of in-flight jobs plus submit/terminal instants.
     * @p shards sizes the shard track list (tracks appear even for
     * shards that served nothing).
     */
    void writeChromeTrace(std::ostream &out, unsigned shards,
                          Cycle makespan) const;

  private:
    std::vector<JobSpan> spans_;
};

} // namespace opac::obs

#endif // OPAC_OBS_SPAN_HH
