/**
 * @file
 * Flight recorder — bounded per-shard rings of recent span events,
 * dumped as a one-file postmortem when something dies.
 *
 * Spans (obs/span.hh) record everything about every job, but a
 * million-job run produces a span stream nobody wants to trawl when a
 * single shard fell over at 3am. The flight recorder keeps only the
 * last few dozen span events per shard — what was batched, dispatched,
 * executing and resolving just before the failure — and the server
 * dumps every ring, together with the active per-shard fault plans and
 * the run seed, the moment a job fails, a shard dies, or the watchdog
 * fires. One-in-a-billion fault interactions then arrive as one small
 * JSON file that replays: the seed and fault plan reproduce the run
 * (docs/RESILIENCE.md), and the ring shows where to look.
 *
 * Ring mutation happens on the scheduler thread only; cycles are
 * virtual, so dumps are deterministic across engine modes.
 */

#ifndef OPAC_OBS_FLIGHT_HH
#define OPAC_OBS_FLIGHT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "obs/span.hh"

namespace opac::obs
{

/** One retained span event: what one shard was doing with one job. */
struct FlightEvent
{
    Cycle at;
    std::uint32_t ticket; //!< 0 for shard-level events (ShardDead)
    Phase phase;
    std::uint32_t batch;
    std::string detail;
};

/** Bounded ring of the most recent span events on one shard. */
class FlightRecorder
{
  public:
    explicit FlightRecorder(std::size_t depth = 64);

    void note(Cycle at, std::uint32_t ticket, Phase phase,
              std::uint32_t batch = 0, std::string detail = "");

    std::size_t capacity() const { return depth_; }
    /** Total events ever noted (>= retained count). */
    std::uint64_t total() const { return total_; }
    /** Retained events, oldest first. */
    std::vector<FlightEvent> recent() const;

  private:
    std::vector<FlightEvent> ring_;
    std::size_t head_ = 0; //!< next write position once full
    std::uint64_t total_ = 0;
    std::size_t depth_;
};

/**
 * The per-shard ring set for one server, plus the dump renderer. The
 * dump is versioned JSON ("opac.serve.flight.v1"): the trigger reason,
 * the virtual cycle, the run seed, and per shard its active fault plan
 * (pre-rendered describeFault() lines) and retained events.
 */
class FlightRecorders
{
  public:
    FlightRecorders(unsigned shards, std::size_t depth);

    FlightRecorder &shard(unsigned i) { return rings_[i]; }
    const FlightRecorder &shard(unsigned i) const { return rings_[i]; }
    unsigned shards() const { return unsigned(rings_.size()); }

    std::string
    dumpJson(const std::string &reason, Cycle now, std::uint64_t seed,
             const std::vector<std::vector<std::string>> &faultPlans)
        const;

  private:
    std::vector<FlightRecorder> rings_;
};

} // namespace opac::obs

#endif // OPAC_OBS_FLIGHT_HH
