#include "obs/flight.hh"

#include "common/logging.hh"
#include "trace/json.hh"

namespace opac::obs
{

FlightRecorder::FlightRecorder(std::size_t depth)
    : depth_(depth ? depth : 1)
{
    ring_.reserve(depth_);
}

void
FlightRecorder::note(Cycle at, std::uint32_t ticket, Phase phase,
                     std::uint32_t batch, std::string detail)
{
    FlightEvent e{at, ticket, phase, batch, std::move(detail)};
    if (ring_.size() < depth_) {
        ring_.push_back(std::move(e));
    } else {
        ring_[head_] = std::move(e);
        head_ = (head_ + 1) % depth_;
    }
    ++total_;
}

std::vector<FlightEvent>
FlightRecorder::recent() const
{
    std::vector<FlightEvent> out;
    out.reserve(ring_.size());
    for (std::size_t i = 0; i < ring_.size(); ++i)
        out.push_back(ring_[(head_ + i) % ring_.size()]);
    return out;
}

FlightRecorders::FlightRecorders(unsigned shards, std::size_t depth)
{
    rings_.reserve(shards);
    for (unsigned i = 0; i < shards; ++i)
        rings_.emplace_back(depth);
}

std::string
FlightRecorders::dumpJson(
    const std::string &reason, Cycle now, std::uint64_t seed,
    const std::vector<std::vector<std::string>> &faultPlans) const
{
    std::string out;
    out += "{\n";
    out += " \"version\": 1,\n";
    out += " \"schema\": \"opac.serve.flight.v1\",\n";
    out += strfmt(" \"reason\": \"%s\",\n",
                  trace::json::escape(reason).c_str());
    out += strfmt(" \"cycle\": %llu,\n",
                  static_cast<unsigned long long>(now));
    out += strfmt(" \"seed\": %llu,\n",
                  static_cast<unsigned long long>(seed));
    out += " \"shards\": [\n";
    for (unsigned i = 0; i < rings_.size(); ++i) {
        const FlightRecorder &r = rings_[i];
        out += strfmt("  {\"shard\": %u, \"depth\": %zu, \"total\": %llu,"
                      " \"fault_plan\": [",
                      i, r.capacity(),
                      static_cast<unsigned long long>(r.total()));
        if (i < faultPlans.size()) {
            bool first = true;
            for (const std::string &line : faultPlans[i]) {
                if (!first)
                    out += ", ";
                first = false;
                out += strfmt("\"%s\"",
                              trace::json::escape(line).c_str());
            }
        }
        out += "], \"events\": [";
        bool first = true;
        for (const FlightEvent &e : r.recent()) {
            out += first ? "\n" : ",\n";
            first = false;
            out += strfmt("   {\"at\": %llu, \"ticket\": %u, \"ph\": "
                          "\"%s\", \"batch\": %u, \"detail\": \"%s\"}",
                          static_cast<unsigned long long>(e.at), e.ticket,
                          phaseName(e.phase), e.batch,
                          trace::json::escape(e.detail).c_str());
        }
        out += first ? "]}" : "\n  ]}";
        out += i + 1 < rings_.size() ? ",\n" : "\n";
    }
    out += " ]\n}\n";
    return out;
}

} // namespace opac::obs
