#include "obs/metrics.hh"

#include <cctype>
#include <map>
#include <vector>

#include "common/logging.hh"
#include "stats/stats.hh"

namespace opac::obs
{

namespace
{

// Split "serve.tenant3.e2e" into a metric name ("serve_e2e") and
// labels (tenant="3"). Structural segments become labels; everything
// else is sanitized into the flat metric name.
struct PromName
{
    std::string metric;
    std::string labels; //!< rendered 'k="v",k="v"' body, may be empty
};

bool
labelSegment(const std::string &seg, std::string &key, std::string &val)
{
    static const char *dims[] = {"tenant", "shard", "cell"};
    for (const char *dim : dims) {
        std::size_t n = std::string(dim).size();
        if (seg.size() > n && seg.compare(0, n, dim) == 0) {
            bool digits = true;
            for (std::size_t i = n; i < seg.size(); ++i)
                digits = digits && std::isdigit((unsigned char)seg[i]);
            if (digits) {
                key = dim;
                val = seg.substr(n);
                return true;
            }
        }
    }
    return false;
}

PromName
promName(const std::string &qualified, const std::string &prefix)
{
    PromName out;
    out.metric = prefix;
    std::size_t start = 0;
    while (start <= qualified.size()) {
        std::size_t dot = qualified.find('.', start);
        std::string seg =
            qualified.substr(start, dot == std::string::npos
                                        ? std::string::npos
                                        : dot - start);
        std::string key, val;
        if (labelSegment(seg, key, val)) {
            if (!out.labels.empty())
                out.labels += ",";
            out.labels += key + "=\"" + val + "\"";
        } else if (!seg.empty()) {
            out.metric += "_";
            for (char c : seg)
                out.metric += std::isalnum((unsigned char)c) ? c : '_';
        }
        if (dot == std::string::npos)
            break;
        start = dot + 1;
    }
    return out;
}

std::string
withLabels(const PromName &n, const std::string &extra = "")
{
    std::string body = n.labels;
    if (!extra.empty())
        body += body.empty() ? extra : "," + extra;
    return body.empty() ? n.metric : n.metric + "{" + body + "}";
}

} // anonymous namespace

std::string
renderProm(const stats::StatGroup &root, const std::string &prefix)
{
    // family name -> (type, sample lines); map keeps families grouped
    // and sorted, as the exposition format requires.
    std::map<std::string, std::pair<const char *,
                                    std::vector<std::string>>>
        families;

    root.forEachScalar([&](const std::string &name, double v) {
        PromName n = promName(name, prefix);
        auto &fam = families[n.metric];
        fam.first = "gauge";
        fam.second.push_back(
            strfmt("%s %.9g\n", withLabels(n).c_str(), v));
    });

    root.forEachQuantile([&](const std::string &name,
                             const stats::Quantile &q) {
        PromName n = promName(name, prefix);
        auto &fam = families[n.metric];
        fam.first = "summary";
        static const std::pair<double, const char *> tags[] = {
            {50, "0.5"}, {95, "0.95"}, {99, "0.99"}};
        for (auto [p, tag] : tags) {
            fam.second.push_back(strfmt(
                "%s %.9g\n",
                withLabels(n, strfmt("quantile=\"%s\"", tag)).c_str(),
                q.percentile(p)));
        }
        PromName sum{n.metric + "_sum", n.labels};
        PromName cnt{n.metric + "_count", n.labels};
        fam.second.push_back(strfmt("%s %.9g\n", withLabels(sum).c_str(),
                                    q.mean() * double(q.count())));
        fam.second.push_back(
            strfmt("%s %llu\n", withLabels(cnt).c_str(),
                   static_cast<unsigned long long>(q.count())));
    });

    std::string out;
    for (const auto &[metric, fam] : families) {
        out += strfmt("# TYPE %s %s\n", metric.c_str(), fam.first);
        for (const std::string &line : fam.second)
            out += line;
    }
    return out;
}

} // namespace opac::obs
