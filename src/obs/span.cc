#include "obs/span.hh"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <map>
#include <ostream>
#include <set>
#include <tuple>

#include "common/logging.hh"
#include "trace/json.hh"
#include "trace/sinks.hh"
#include "trace/trace.hh"

namespace opac::obs
{

namespace
{

double
wallNowNs()
{
    using namespace std::chrono;
    return double(duration_cast<nanoseconds>(
                      steady_clock::now().time_since_epoch())
                      .count());
}

} // anonymous namespace

const char *
phaseName(Phase p)
{
    switch (p) {
      case Phase::Submit: return "submit";
      case Phase::Admit: return "admit";
      case Phase::Reject: return "reject";
      case Phase::Batch: return "batch";
      case Phase::Dispatch: return "dispatch";
      case Phase::Execute: return "execute";
      case Phase::Verify: return "verify";
      case Phase::Commit: return "commit";
      case Phase::Fail: return "fail";
      case Phase::Failover: return "failover";
      case Phase::ShardDead: return "shard_dead";
    }
    return "?";
}

Cycle
JobSpan::edgeAt(Phase p) const
{
    for (const SpanEdge &e : edges)
        if (e.phase == p)
            return e.at;
    return noEdge;
}

bool
JobSpan::terminal() const
{
    for (auto it = edges.rbegin(); it != edges.rend(); ++it) {
        if (it->phase == Phase::Commit || it->phase == Phase::Fail ||
            it->phase == Phase::Reject)
            return true;
    }
    return false;
}

JobSpan &
SpanLog::open(std::uint32_t ticket)
{
    assert(ticket >= 1);
    if (spans_.size() < ticket)
        spans_.resize(ticket);
    JobSpan &s = spans_[ticket - 1];
    s.ticket = ticket;
    return s;
}

JobSpan &
SpanLog::at(std::uint32_t ticket)
{
    assert(ticket >= 1 && ticket <= spans_.size());
    return spans_[ticket - 1];
}

const JobSpan &
SpanLog::at(std::uint32_t ticket) const
{
    assert(ticket >= 1 && ticket <= spans_.size());
    return spans_[ticket - 1];
}

void
SpanLog::edge(std::uint32_t ticket, Phase p, Cycle at, std::uint32_t arg)
{
    JobSpan &s = this->at(ticket);
    s.edges.push_back(SpanEdge{p, at, arg, wallNowNs()});
}

std::string
SpanLog::json(bool include_wall) const
{
    std::string out;
    out += "{\n";
    out += " \"version\": 1,\n";
    out += " \"schema\": \"opac.serve.spans.v1\",\n";
    out += strfmt(" \"spans\": [");
    bool firstSpan = true;
    for (const JobSpan &s : spans_) {
        if (s.ticket == 0)
            continue; // ticket allocated but never recorded
        out += firstSpan ? "\n" : ",\n";
        firstSpan = false;
        out += strfmt(
            "  {\"ticket\": %u, \"tenant\": %u, \"kind\": \"%s\", "
            "\"compat\": %llu, \"deadline\": %llu, \"shard\": %d, "
            "\"batch\": %u, \"failovers\": %u, \"retries\": %llu, "
            "\"replans\": %u, \"note\": \"%s\", \"edges\": [",
            s.ticket, s.tenant, trace::json::escape(s.kind).c_str(),
            static_cast<unsigned long long>(s.compat),
            static_cast<unsigned long long>(s.deadline), s.shard, s.batch,
            s.failovers, static_cast<unsigned long long>(s.retries),
            s.replans, trace::json::escape(s.note).c_str());
        bool firstEdge = true;
        for (const SpanEdge &e : s.edges) {
            if (!firstEdge)
                out += ", ";
            firstEdge = false;
            out += strfmt("{\"ph\": \"%s\", \"at\": %llu, \"arg\": %u",
                          phaseName(e.phase),
                          static_cast<unsigned long long>(e.at), e.arg);
            if (include_wall)
                out += strfmt(", \"wall_ns\": %.0f", e.wallNs);
            out += "}";
        }
        out += "]}";
    }
    out += "\n ]\n}\n";
    return out;
}

void
SpanLog::writeChromeTrace(std::ostream &out, unsigned shards,
                          Cycle makespan) const
{
    trace::Tracer tracer;
    trace::ChromeTraceSink sink(out);
    tracer.addSink(&sink);

    // Deterministic component order: shards first, then tenants sorted.
    std::vector<std::uint16_t> shardComp(shards);
    for (unsigned j = 0; j < shards; ++j)
        shardComp[j] = tracer.internComponent(strfmt("shard%u", j));
    std::set<std::uint32_t> tenants;
    for (const JobSpan &s : spans_)
        if (s.ticket)
            tenants.insert(s.tenant);
    std::map<std::uint32_t, std::uint16_t> tenantComp;
    std::map<std::uint32_t, std::uint16_t> tenantTrack;
    for (std::uint32_t t : tenants) {
        std::uint16_t c = tracer.internComponent(strfmt("tenant%u", t));
        tenantComp[t] = c;
        tenantTrack[t] = tracer.internTrack(c, "inflight");
    }

    // Batch service windows: every job in a batch shares the same
    // execute -> (verify | fail | failover) window on its shard, so
    // dedup into one slice per (shard, window, batch) carrying the job
    // count. The window end is the first resolution edge after the
    // execute edge (harvest resolves a whole batch at one cycle).
    std::map<std::tuple<std::uint32_t, Cycle, Cycle, std::uint32_t>,
             unsigned>
        windows;
    for (const JobSpan &s : spans_) {
        for (std::size_t i = 0; i < s.edges.size(); ++i) {
            if (s.edges[i].phase != Phase::Execute)
                continue;
            std::uint32_t shard = s.edges[i].arg;
            std::uint32_t batch = 0;
            for (std::size_t k = i; k-- > 0;) {
                if (s.edges[k].phase == Phase::Batch) {
                    batch = s.edges[k].arg;
                    break;
                }
            }
            for (std::size_t k = i + 1; k < s.edges.size(); ++k) {
                Phase p = s.edges[k].phase;
                if (p == Phase::Verify || p == Phase::Fail ||
                    p == Phase::Failover) {
                    ++windows[{shard, s.edges[i].at, s.edges[k].at,
                               batch}];
                    break;
                }
            }
        }
    }

    // One flat emission list, sorted by (cycle, category, keys) so the
    // byte stream is deterministic and B/E slices nest per shard.
    struct Emis
    {
        Cycle at;
        int cat; // 0 slice end, 1 slice begin, 2 push, 3 pop, 4 fault
        std::uint32_t k1, k2;
        trace::EventKind kind;
        std::uint8_t arg;
        std::uint16_t comp, track;
        std::uint32_t a, b;
    };
    std::vector<Emis> ems;

    for (const auto &[key, jobs] : windows) {
        auto [shard, start, end, batch] = key;
        if (shard >= shards)
            continue;
        std::uint16_t comp = shardComp[shard];
        std::uint16_t track = tracer.internTrack(
            comp, strfmt("batch %u (%u job%s)", batch, jobs,
                         jobs == 1 ? "" : "s"));
        ems.push_back({start, 1, shard, batch, trace::EventKind::CallBegin,
                       0, comp, track, jobs, 0});
        ems.push_back({end, 0, shard, batch, trace::EventKind::CallEnd, 0,
                       comp, track, jobs, 0});
    }

    // Per-tenant in-flight depth: +1 at submit, -1 at the terminal
    // edge. Pushes sort before pops at a tie so a same-cycle
    // submit+reject still shows its spike.
    struct Delta
    {
        Cycle at;
        int d;
        std::uint32_t ticket;
    };
    std::map<std::uint32_t, std::vector<Delta>> deltas;
    for (const JobSpan &s : spans_) {
        if (!s.ticket)
            continue;
        for (const SpanEdge &e : s.edges) {
            if (e.phase == Phase::Submit)
                deltas[s.tenant].push_back({e.at, +1, s.ticket});
            else if (e.phase == Phase::Commit || e.phase == Phase::Fail ||
                     e.phase == Phase::Reject)
                deltas[s.tenant].push_back({e.at, -1, s.ticket});
            else if (e.phase == Phase::Failover)
                ems.push_back({e.at, 4, s.tenant, s.ticket,
                               trace::EventKind::Fault, 0,
                               tenantComp[s.tenant], tenantTrack[s.tenant],
                               e.arg, s.ticket});
        }
    }
    for (auto &[tenant, dv] : deltas) {
        std::sort(dv.begin(), dv.end(),
                  [](const Delta &x, const Delta &y) {
                      return std::tie(x.at, y.d, x.ticket) <
                             std::tie(y.at, x.d, y.ticket);
                  });
        std::uint32_t depth = 0;
        for (const Delta &d : dv) {
            depth = std::uint32_t(int(depth) + d.d);
            ems.push_back({d.at, d.d > 0 ? 2 : 3, tenant, d.ticket,
                           d.d > 0 ? trace::EventKind::FifoPush
                                   : trace::EventKind::FifoPop,
                           0, tenantComp[tenant], tenantTrack[tenant],
                           depth, d.ticket});
        }
    }

    std::sort(ems.begin(), ems.end(), [](const Emis &x, const Emis &y) {
        return std::tie(x.at, x.cat, x.k1, x.k2, x.track) <
               std::tie(y.at, y.cat, y.k1, y.k2, y.track);
    });
    for (const Emis &e : ems)
        tracer.emit(e.at, e.kind, e.arg, e.comp, e.track, e.a, e.b);
    tracer.finish(makespan ? makespan : 1);
}

} // namespace opac::obs
