/**
 * @file
 * Metric export helpers — the scrape-facing face of the observability
 * stack (docs/OBSERVABILITY.md).
 *
 * The stats tree (src/stats) already renders as flat JSON; serving
 * adds the other lingua franca: Prometheus-style text exposition.
 * renderProm() walks a StatGroup subtree and emits one sample line per
 * scalar stat, turning structural name segments into labels — the
 * qualified name "serve.tenant3.e2e" becomes
 * `opac_serve_e2e{tenant="3",quantile="0.5"} ...` — so a per-tenant or
 * per-shard family is one metric with label dimensions, the shape
 * dashboards and alert rules expect, rather than hundreds of
 * individually named series. Quantile stats render as summaries
 * (quantile label + _count/_sum), everything else as gauges.
 *
 * The walk order is the deterministic stats-tree order and values are
 * virtual-time derived, so the exposition is byte-identical across
 * engine modes like every other export.
 */

#ifndef OPAC_OBS_METRICS_HH
#define OPAC_OBS_METRICS_HH

#include <string>

namespace opac::stats
{
class StatGroup;
}

namespace opac::obs
{

/**
 * Prometheus text exposition of @p root's subtree. Name segments
 * matching tenant<N>/shard<N>/cell<N> become labels; the rest joins
 * with '_' under @p prefix. Samples of one metric family are grouped
 * under a single # TYPE line, families sorted by name.
 */
std::string renderProm(const stats::StatGroup &root,
                       const std::string &prefix = "opac");

} // namespace opac::obs

#endif // OPAC_OBS_METRICS_HH
