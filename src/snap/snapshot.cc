#include "snap/snapshot.hh"

#include <bit>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <unordered_set>

namespace opac::snap
{

std::uint64_t
fnv1a(const void *data, std::size_t len, std::uint64_t seed)
{
    const auto *p = static_cast<const unsigned char *>(data);
    std::uint64_t h = seed;
    for (std::size_t i = 0; i < len; i++) {
        h ^= p[i];
        h *= 1099511628211ull;
    }
    return h;
}

std::uint64_t
fnvMix(std::uint64_t hash, std::uint64_t value)
{
    unsigned char bytes[8];
    for (int i = 0; i < 8; i++)
        bytes[i] = static_cast<unsigned char>(value >> (8 * i));
    return fnv1a(bytes, 8, hash);
}

// ---------------------------------------------------------------- Writer

void
Writer::putLe(std::uint64_t v, int n)
{
    for (int i = 0; i < n; i++)
        _buf.push_back(static_cast<char>(v >> (8 * i)));
}

void
Writer::f64(double v)
{
    u64(std::bit_cast<std::uint64_t>(v));
}

void
Writer::str(const std::string &s)
{
    u32(static_cast<std::uint32_t>(s.size()));
    _buf.append(s);
}

void
Writer::bytes(const void *data, std::size_t len)
{
    _buf.append(static_cast<const char *>(data), len);
}

// ---------------------------------------------------------------- Reader

void
Reader::need(std::size_t n) const
{
    if (_data.size() - _pos < n)
        throw SnapshotError(
            _site, "section payload truncated: need " +
                       std::to_string(n) + " bytes at offset " +
                       std::to_string(_pos) + " of " +
                       std::to_string(_data.size()));
}

std::uint8_t
Reader::u8()
{
    need(1);
    return static_cast<std::uint8_t>(_data[_pos++]);
}

std::uint64_t
Reader::getLe(int n)
{
    need(static_cast<std::size_t>(n));
    std::uint64_t v = 0;
    for (int i = 0; i < n; i++)
        v |= static_cast<std::uint64_t>(
                 static_cast<unsigned char>(_data[_pos + i]))
             << (8 * i);
    _pos += static_cast<std::size_t>(n);
    return v;
}

double
Reader::f64()
{
    return std::bit_cast<double>(u64());
}

std::string
Reader::str()
{
    std::size_t len = u32();
    need(len);
    std::string s = _data.substr(_pos, len);
    _pos += len;
    return s;
}

void
Reader::bytes(void *out, std::size_t len)
{
    need(len);
    _data.copy(static_cast<char *>(out), len, _pos);
    _pos += len;
}

void
Reader::expectEnd() const
{
    if (!atEnd())
        throw SnapshotError(
            _site, std::to_string(remaining()) +
                       " trailing bytes after decoding the section "
                       "payload (schema mismatch)");
}

void
Reader::fail(const std::string &what) const
{
    throw SnapshotError(_site, what);
}

// -------------------------------------------------------------- Snapshot

void
Snapshot::add(std::string name, std::uint32_t version,
              std::string payload)
{
    _sections.push_back(
        Section{std::move(name), version, std::move(payload)});
}

const Section *
Snapshot::find(const std::string &name) const
{
    for (const Section &s : _sections)
        if (s.name == name)
            return &s;
    return nullptr;
}

const Section &
Snapshot::require(const std::string &name) const
{
    const Section *s = find(name);
    if (!s)
        throw SnapshotError("snapshot",
                            "missing section '" + name + "'");
    return *s;
}

std::string
Snapshot::encode() const
{
    std::unordered_set<std::string> seen;
    for (const Section &s : _sections)
        if (!seen.insert(s.name).second)
            throw SnapshotError("snapshot", "duplicate section '" +
                                                s.name + "'");

    Writer w;
    w.u64(magic);
    w.u32(formatVersion);
    w.u64(cycle);
    w.u64(fingerprint);
    w.u32(static_cast<std::uint32_t>(_sections.size()));
    for (const Section &s : _sections) {
        w.str(s.name);
        w.u32(s.version);
        w.u64(s.payload.size());
        w.bytes(s.payload.data(), s.payload.size());
    }
    std::uint64_t sum = fnv1a(w.buffer().data(), w.buffer().size());
    w.u64(sum);
    return w.take();
}

Snapshot
Snapshot::decode(const std::string &bytes, const std::string &site)
{
    if (bytes.size() < 8 + 4 + 8 + 8 + 4 + 8)
        throw SnapshotError(site, "snapshot truncated (" +
                                      std::to_string(bytes.size()) +
                                      " bytes)");
    // Verify the checksum over everything before the 8-byte footer
    // first: any subsequent parse error is then a genuine schema
    // problem, not random corruption.
    std::string body = bytes.substr(0, bytes.size() - 8);
    {
        std::string footer = bytes.substr(bytes.size() - 8);
        Reader f(footer, site);
        std::uint64_t want = f.u64();
        std::uint64_t got = fnv1a(body.data(), body.size());
        if (want != got)
            throw SnapshotError(
                site, "snapshot checksum mismatch (file corrupt or "
                      "truncated mid-write)");
    }

    Reader r(body, site);
    if (r.u64() != magic)
        throw SnapshotError(site, "not an OPAC snapshot (bad magic)");
    std::uint32_t ver = r.u32();
    if (ver != formatVersion)
        throw SnapshotError(
            site, "unsupported snapshot format version " +
                      std::to_string(ver) + " (this build reads " +
                      std::to_string(formatVersion) + ")");
    Snapshot snap;
    snap.cycle = r.u64();
    snap.fingerprint = r.u64();
    std::uint32_t count = r.u32();
    for (std::uint32_t i = 0; i < count; i++) {
        Section s;
        s.name = r.str();
        s.version = r.u32();
        std::uint64_t len = r.u64();
        if (len > r.remaining())
            throw SnapshotError(
                site, "section '" + s.name + "' payload (" +
                          std::to_string(len) +
                          " bytes) overruns the file");
        s.payload.resize(static_cast<std::size_t>(len));
        if (len)
            r.bytes(s.payload.data(),
                    static_cast<std::size_t>(len));
        snap._sections.push_back(std::move(s));
    }
    r.expectEnd();
    return snap;
}

void
Snapshot::writeFile(const std::string &path) const
{
    ensureParentDir(path);
    std::string data = encode();
    std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out)
            throw SnapshotError(path, "cannot open temp file '" +
                                          tmp + "' for writing");
        out.write(data.data(),
                  static_cast<std::streamsize>(data.size()));
        out.flush();
        if (!out)
            throw SnapshotError(path, "short write to '" + tmp + "'");
    }
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec)
        throw SnapshotError(path, "rename from '" + tmp +
                                      "' failed: " + ec.message());
}

Snapshot
Snapshot::readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw SnapshotError(path, "cannot open snapshot file");
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    if (in.bad())
        throw SnapshotError(path, "read error");
    return decode(bytes, path);
}

// ------------------------------------------------------------- dirs

void
ensureDirectories(const std::string &dir)
{
    if (dir.empty())
        return;
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec)
        throw SnapshotError(dir, "cannot create directory: " +
                                     ec.message());
}

void
ensureParentDir(const std::string &path)
{
    std::filesystem::path p(path);
    if (p.has_parent_path())
        ensureDirectories(p.parent_path().string());
}

} // namespace opac::snap
