/**
 * @file
 * Versioned, checksummed machine snapshots.
 *
 * A Snapshot is a bag of named, individually versioned component
 * sections plus a header that pins the simulated cycle and a
 * configuration fingerprint. The container format is deliberately
 * dumb — length-prefixed little-endian records with an FNV-1a footer —
 * so `tools/snapshot_inspect` can dump and diff files without linking
 * the simulator, and so a truncated or bit-flipped file is rejected
 * before any component sees a byte of it.
 *
 * File layout (all integers little-endian):
 *
 *     u64  magic            "OPACSNAP" as a little-endian u64
 *     u32  formatVersion    container layout version (currently 1)
 *     u64  cycle            simulated cycle the machine was saved at
 *     u64  fingerprint      configuration fingerprint (see coproc)
 *     u32  sectionCount
 *     sectionCount times:
 *       u32  nameLen, nameLen bytes   section name ("comp.cell0", ...)
 *       u32  version                  component payload version
 *       u64  payloadLen, payloadLen bytes
 *     u64  checksum         FNV-1a over every byte above
 *
 * Components serialize through Writer (append-only primitives) and
 * deserialize through Reader (bounds-checked; throws SnapshotError
 * naming the section on any overrun). writeFile() is atomic: the
 * bytes land in a sibling temp file that is renamed over the target,
 * so a crash mid-checkpoint can never leave a half-written snapshot
 * behind.
 */

#ifndef OPAC_SNAP_SNAPSHOT_HH
#define OPAC_SNAP_SNAPSHOT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/error.hh"
#include "common/types.hh"

namespace opac::snap
{

/** Container layout version written into every snapshot file. */
constexpr std::uint32_t formatVersion = 1;

/** "OPACSNAP" as a little-endian u64. */
constexpr std::uint64_t magic = 0x50414e534341504full;

/** FNV-1a 64-bit over a byte range (seed/prime per the reference). */
std::uint64_t fnv1a(const void *data, std::size_t len,
                    std::uint64_t seed = 14695981039346656037ull);

/** Mix one integer into a running FNV-1a hash (fingerprinting). */
std::uint64_t fnvMix(std::uint64_t hash, std::uint64_t value);

/** Append-only little-endian primitive encoder for section payloads. */
class Writer
{
  public:
    void u8(std::uint8_t v) { _buf.push_back(static_cast<char>(v)); }
    void u16(std::uint16_t v) { putLe(v, 2); }
    void u32(std::uint32_t v) { putLe(v, 4); }
    void u64(std::uint64_t v) { putLe(v, 8); }
    void i64(std::int64_t v) { putLe(static_cast<std::uint64_t>(v), 8); }
    void i32(std::int32_t v)
    {
        putLe(static_cast<std::uint32_t>(v), 4);
    }
    void b(bool v) { u8(v ? 1 : 0); }

    /** Doubles travel as raw bit patterns: save/load is bit-exact. */
    void f64(double v);

    /** u32 length prefix + raw bytes. */
    void str(const std::string &s);
    void bytes(const void *data, std::size_t len);

    const std::string &buffer() const { return _buf; }
    std::string take() { return std::move(_buf); }

  private:
    void putLe(std::uint64_t v, int n);

    std::string _buf;
};

/** Bounds-checked decoder over one section payload. */
class Reader
{
  public:
    Reader(const std::string &payload, std::string site)
        : _data(payload), _site(std::move(site))
    {
    }

    std::uint8_t u8();
    std::uint16_t u16() { return static_cast<std::uint16_t>(getLe(2)); }
    std::uint32_t u32() { return static_cast<std::uint32_t>(getLe(4)); }
    std::uint64_t u64() { return getLe(8); }
    std::int64_t i64() { return static_cast<std::int64_t>(getLe(8)); }
    std::int32_t i32() { return static_cast<std::int32_t>(getLe(4)); }
    bool b() { return u8() != 0; }
    double f64();
    std::string str();
    void bytes(void *out, std::size_t len);

    std::size_t remaining() const { return _data.size() - _pos; }
    bool atEnd() const { return _pos == _data.size(); }

    /** Throw unless every payload byte was consumed (schema check). */
    void expectEnd() const;

    const std::string &site() const { return _site; }

    /** Raise a SnapshotError at this reader's site. */
    [[noreturn]] void fail(const std::string &what) const;

  private:
    std::uint64_t getLe(int n);
    void need(std::size_t n) const;

    const std::string &_data;
    std::string _site;
    std::size_t _pos = 0;
};

/** One named, versioned component payload. */
struct Section
{
    std::string name;
    std::uint32_t version = 1;
    std::string payload;
};

/** A decoded snapshot: header fields plus component sections. */
class Snapshot
{
  public:
    Cycle cycle = 0;
    std::uint64_t fingerprint = 0;

    /** Append a section (names must be unique; checked on encode). */
    void add(std::string name, std::uint32_t version,
             std::string payload);

    /** Find a section by name, or nullptr. */
    const Section *find(const std::string &name) const;

    /** Find a section by name, or throw SnapshotError. */
    const Section &require(const std::string &name) const;

    const std::vector<Section> &sections() const { return _sections; }

    /** Serialize to the on-disk byte stream (appends checksum). */
    std::string encode() const;

    /**
     * Parse an encoded snapshot. Throws SnapshotError (site = @p site)
     * on bad magic, unknown format version, truncation, or checksum
     * mismatch.
     */
    static Snapshot decode(const std::string &bytes,
                           const std::string &site);

    /** Atomically write encode() to @p path (temp file + rename). */
    void writeFile(const std::string &path) const;

    /** Read and decode a snapshot file (site = the path). */
    static Snapshot readFile(const std::string &path);

  private:
    std::vector<Section> _sections;
};

/** mkdir -p for @p dir; throws SnapshotError on failure. */
void ensureDirectories(const std::string &dir);

/** mkdir -p for the parent directory of @p path (if it has one). */
void ensureParentDir(const std::string &path);

} // namespace opac::snap

#endif // OPAC_SNAP_SNAPSHOT_HH
